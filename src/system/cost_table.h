// Precomputed (layer x accelerator) cost matrices — the single cost source
// for the search passes and the simulator (DESIGN.md §3).
//
// Every hot loop used to pay a virtual AcceleratorModel::compute_latency
// call that re-ran the MAESTRO-style tiling roofline per query, and
// unlocalized-duration evaluation re-walked predecessor edges per call. The
// paper's plug-in performance-model design (P_Acc) evaluates each
// (task, device) pair exactly once; this table materializes that: dense
// layer x accelerator matrices of batch-scaled compute latency, compute
// energy, and step-1 unlocalized duration, plus flattened per-layer byte
// footprints and per-accelerator bandwidth/energy scalars. Unsupported
// (layer, accelerator) pairs are skipped at build time and poisoned with
// infinity; a support mask and per-kind candidate lists replace the virtual
// supports() calls.
//
// Ownership/lifetime: built by (and owned by) the Simulator at
// construction. The referenced ModelGraph and SystemConfig must outlive the
// table; accelerator specs are immutable after SystemConfig construction,
// so the only knobs that can invalidate a built table are
// ModelGraph::set_batch, ModelGraph::add_layer, and
// SystemConfig::set_bw_acc — fresh() detects all three and the Simulator
// rebuilds lazily. After the build, no query path invokes the virtual
// AcceleratorModel interface (regression-tested with counting models).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "model/model_graph.h"
#include "system/system_config.h"

namespace h2h {

class CostTable {
 public:
  /// Evaluates every supported (layer, accelerator) pair once. Values are
  /// bit-identical to the direct AcceleratorModel queries they replace
  /// (pinned by test_cost_table.cpp).
  CostTable(const ModelGraph& model, const SystemConfig& sys);

  /// False when a snapshot knob moved since the build (batch size, layer
  /// count, or the system-wide BW_acc): the owner must rebuild.
  [[nodiscard]] bool fresh(const ModelGraph& model,
                           const SystemConfig& sys) const noexcept {
    return batch_ == model.batch() && layer_count_ == model.layer_count() &&
           host_bw_ == sys.host().bw_acc;
  }

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layer_count_;
  }
  [[nodiscard]] std::size_t acc_count() const noexcept { return acc_count_; }

  [[nodiscard]] bool is_input(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return is_input_[id.value] != 0;
  }
  /// True when `acc` can run `id` and the pair was costed. Always false for
  /// Input layers: they are host-resident and never execute on an
  /// accelerator, even though the kind is structurally "supported".
  [[nodiscard]] bool supported(LayerId id, AccId acc) const {
    return supported_[index(id, acc)] != 0;
  }

  /// Compute latency of the whole batch, seconds (excludes data movement).
  [[nodiscard]] double compute_latency(LayerId id, AccId acc) const {
    H2H_EXPECTS(supported(id, acc));
    return compute_latency_[index(id, acc)];
  }
  /// Compute energy of the whole batch, joules.
  [[nodiscard]] double compute_energy(LayerId id, AccId acc) const {
    H2H_EXPECTS(supported(id, acc));
    return compute_energy_[index(id, acc)];
  }
  /// Step-1 duration: all weights, IFMs, and the OFM cross the host link.
  [[nodiscard]] double unlocalized_duration(LayerId id, AccId acc) const {
    H2H_EXPECTS(!is_input(id));
    H2H_EXPECTS(supported(id, acc));
    return unlocalized_[index(id, acc)];
  }

  [[nodiscard]] Bytes weight_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return weight_bytes_[id.value];
  }
  /// Bytes of `id`'s output tensor (== ModelGraph::edge_bytes(id)).
  [[nodiscard]] Bytes out_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return out_bytes_[id.value];
  }
  /// Per-in-edge bytes, one entry per graph().preds(id) slot.
  [[nodiscard]] std::span<const Bytes> in_edge_bytes(LayerId id) const {
    H2H_EXPECTS(id.value + 1 < in_offset_.size());
    return {in_bytes_.data() + in_offset_[id.value],
            in_offset_[id.value + 1] - in_offset_[id.value]};
  }
  /// Sum of in_edge_bytes (the aggregated predecessor-input traffic).
  [[nodiscard]] Bytes pred_in_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return pred_in_bytes_[id.value];
  }

  /// Per-accelerator scalars snapshotted from the specs (no virtual call).
  [[nodiscard]] double bw_host(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return bw_host_[acc.value];
  }
  [[nodiscard]] double bw_local(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return bw_local_[acc.value];
  }
  [[nodiscard]] double link_power(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return link_power_[acc.value];
  }
  [[nodiscard]] double dram_byte_energy(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return dram_byte_energy_[acc.value];
  }
  [[nodiscard]] Bytes dram_capacity(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return dram_capacity_[acc.value];
  }

  /// Accelerators able to run `kind`, ascending (== SystemConfig::supporting
  /// without the per-call allocation and virtual dispatch).
  [[nodiscard]] std::span<const AccId> supporting(LayerKind kind) const {
    H2H_EXPECTS(static_cast<std::size_t>(kind) < kKindCount);
    return supporting_[static_cast<std::size_t>(kind)];
  }

  /// The layer's compute-affinity accelerator: the supporting accelerator
  /// minimizing pinned-weight execution (compute latency + weight bytes over
  /// local DRAM bandwidth), first minimum winning. Depends only on the cost
  /// table, not on any mapping, so it is evaluated once at build time — the
  /// step-4 candidate generator reads it per probe (DESIGN.md §6). Invalid
  /// for Input layers.
  [[nodiscard]] AccId affinity_acc(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return affinity_[id.value];
  }

 private:
  [[nodiscard]] std::size_t index(LayerId id, AccId acc) const {
    H2H_EXPECTS(id.value < layer_count_);
    H2H_EXPECTS(acc.value < acc_count_);
    return static_cast<std::size_t>(id.value) * acc_count_ + acc.value;
  }

  static constexpr std::size_t kKindCount =
      static_cast<std::size_t>(LayerKind::Concat) + 1;

  std::size_t layer_count_ = 0;
  std::size_t acc_count_ = 0;
  std::uint32_t batch_ = 1;
  double host_bw_ = 0;

  // layer x acc, row-major by layer.
  std::vector<double> compute_latency_;
  std::vector<double> compute_energy_;
  std::vector<double> unlocalized_;
  std::vector<std::uint8_t> supported_;

  // per layer.
  std::vector<std::uint8_t> is_input_;
  std::vector<AccId> affinity_;
  std::vector<Bytes> weight_bytes_;
  std::vector<Bytes> out_bytes_;
  std::vector<Bytes> pred_in_bytes_;
  std::vector<std::uint32_t> in_offset_;  // CSR: layer -> first in-edge slot
  std::vector<Bytes> in_bytes_;           // flat, keyed by in-edge slot

  // per accelerator.
  std::vector<double> bw_host_;
  std::vector<double> bw_local_;
  std::vector<double> link_power_;
  std::vector<double> dram_byte_energy_;
  std::vector<Bytes> dram_capacity_;

  std::array<std::vector<AccId>, kKindCount> supporting_;
};

}  // namespace h2h
