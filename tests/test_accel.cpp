#include <gtest/gtest.h>

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "accel/registry.h"
#include "util/error.h"

namespace h2h {
namespace {

Layer big_conv() {
  return Layer{"c", LayerKind::Conv, ConvShape{64, 64, 56, 56, 3, 1}};
}
Layer big_lstm() {
  return Layer{"l", LayerKind::Lstm, LstmShape{512, 512, 2, 32}};
}

TEST(Catalog, HasTwelveValidTable3Entries) {
  const auto catalog = standard_catalog();
  ASSERT_EQ(catalog.size(), 12u);
  const char* expected[] = {"J.Z", "C.Z", "W.J", "J.Q", "A.C", "Y.G",
                            "T.M", "A.P", "X.W", "S.H", "X.Z", "B.L"};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, expected[i]);
    EXPECT_NO_THROW(catalog[i].validate());
  }
}

TEST(Catalog, LocalDramSpansPaperRange) {
  // "local DRAM capacity ... ranging from 512 MB to 8 GB".
  Bytes lo = ~0ull, hi = 0;
  for (const AcceleratorSpec& s : standard_catalog()) {
    lo = std::min(lo, s.dram_capacity);
    hi = std::max(hi, s.dram_capacity);
  }
  EXPECT_EQ(lo, mib(512));
  EXPECT_EQ(hi, gib(8));
}

TEST(Catalog, KindCoverage) {
  std::size_t conv = 0, fc = 0, lstm = 0;
  for (const AcceleratorSpec& s : standard_catalog()) {
    conv += s.kinds.conv;
    fc += s.kinds.fc;
    lstm += s.kinds.lstm;
  }
  EXPECT_EQ(conv, 9u);  // 9 conv-capable designs in Table 3
  EXPECT_GE(fc, 4u);
  EXPECT_GE(lstm, 4u);  // J.Q (partial), Y.G, S.H, X.Z, B.L
}

TEST(Catalog, SpecializationOrderingHolds) {
  // The systolic conv champion must beat the FPGA'15 design on a standard
  // conv layer; the ESE pipeline must beat generic engines on LSTM.
  const auto accs = build_standard_accelerators();
  const auto latency_of = [&](const char* name, const Layer& l) {
    for (const AcceleratorPtr& a : accs)
      if (a->spec().name == name) return a->compute_latency(l);
    ADD_FAILURE() << "missing " << name;
    return 0.0;
  };
  EXPECT_LT(latency_of("X.W", big_conv()), latency_of("C.Z", big_conv()));
  EXPECT_LT(latency_of("T.M", big_conv()), latency_of("C.Z", big_conv()));
  EXPECT_LT(latency_of("S.H", big_lstm()), latency_of("Y.G", big_lstm()));
  EXPECT_LT(latency_of("B.L", big_lstm()), latency_of("J.Q", big_lstm()));
}

TEST(AnalyticalModel, LatencyScalesWithWork) {
  AnalyticalAccelerator acc(eyeriss_like_spec());
  const Layer small{"s", LayerKind::Conv, ConvShape{16, 16, 14, 14, 3, 1}};
  const Layer large{"l", LayerKind::Conv, ConvShape{16, 16, 28, 28, 3, 1}};
  EXPECT_GT(acc.compute_latency(large), acc.compute_latency(small));
  // 4x the MACs at identical utilization => 4x the latency.
  EXPECT_NEAR(acc.compute_latency(large) / acc.compute_latency(small), 4.0,
              1e-9);
}

TEST(AnalyticalModel, UnsupportedKindIsContractViolation) {
  AnalyticalAccelerator acc(eyeriss_like_spec());  // conv only
  EXPECT_FALSE(acc.supports(LayerKind::Lstm));
  EXPECT_THROW((void)acc.compute_latency(big_lstm()), ContractViolation);
}

TEST(AnalyticalModel, StructuralLayersUseVectorPath) {
  AnalyticalAccelerator acc(eyeriss_like_spec());
  const Layer pool{"p", LayerKind::Pool, PoolShape{64, 28, 28, 2, 2}};
  const double expected =
      static_cast<double>(pool.light_ops()) /
      (static_cast<double>(acc.spec().peak_macs_per_cycle) * acc.spec().freq_hz);
  EXPECT_DOUBLE_EQ(acc.compute_latency(pool), expected);
  const Layer cat{"c", LayerKind::Concat, ConcatShape{8, 4, 4}};
  EXPECT_DOUBLE_EQ(acc.compute_latency(cat), 0.0);
}

TEST(AnalyticalModel, EnergyCoefficients) {
  AcceleratorSpec spec = eyeriss_like_spec();
  spec.energy_per_mac = picojoules(10);
  AnalyticalAccelerator acc(spec);
  const Layer c = big_conv();
  EXPECT_DOUBLE_EQ(acc.compute_energy(c),
                   static_cast<double>(c.macs()) * picojoules(10));
  const Layer pool{"p", LayerKind::Pool, PoolShape{8, 4, 4, 2, 2}};
  EXPECT_DOUBLE_EQ(acc.compute_energy(pool),
                   static_cast<double>(pool.light_ops()) * picojoules(10) * 0.25);
}

TEST(SpecValidate, RejectsNonsense) {
  AcceleratorSpec s = eyeriss_like_spec();
  s.freq_hz = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = eyeriss_like_spec();
  s.peak_macs_per_cycle = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = eyeriss_like_spec();
  s.kinds = KindSupport{};
  EXPECT_THROW(s.validate(), ConfigError);
  s = eyeriss_like_spec();
  s.name.clear();
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(LambdaAccelerator, PluginLatencyAndDefaultEnergy) {
  AcceleratorSpec spec = eyeriss_like_spec();
  spec.name = "CUSTOM";
  const LambdaAccelerator acc(
      spec, [](const Layer&) { return 42.0; });
  EXPECT_DOUBLE_EQ(acc.compute_latency(big_conv()), 42.0);
  EXPECT_GT(acc.compute_energy(big_conv()), 0.0);  // falls back to coefficients

  const LambdaAccelerator acc2(
      spec, [](const Layer&) { return 1.0; }, [](const Layer&) { return 7.0; });
  EXPECT_DOUBLE_EQ(acc2.compute_energy(big_conv()), 7.0);
}

TEST(Registry, StandardNamesPreRegistered) {
  auto& reg = AcceleratorRegistry::instance();
  EXPECT_TRUE(reg.contains("C.Z"));
  EXPECT_TRUE(reg.contains("B.L"));
  EXPECT_FALSE(reg.contains("nope"));
  EXPECT_GE(reg.names().size(), 12u);
  const AcceleratorPtr a = reg.make("S.H");
  EXPECT_EQ(a->spec().board, "XCKU060");
  EXPECT_THROW((void)reg.make("nope"), ConfigError);
}

TEST(Registry, CustomRegistrationAndDuplicateRejection) {
  auto& reg = AcceleratorRegistry::instance();
  const std::string name = "TEST-EYE";
  if (!reg.contains(name)) {
    reg.register_factory(name, [] {
      return make_analytical(eyeriss_like_spec());
    });
  }
  EXPECT_TRUE(reg.contains(name));
  EXPECT_THROW(
      reg.register_factory(name, [] { return make_analytical(eyeriss_like_spec()); }),
      ConfigError);
}

}  // namespace
}  // namespace h2h
