#include "system/mapping_io.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr std::string_view kHeader = "h2h-mapping v1";

[[noreturn]] void parse_error(std::size_t line_no, const std::string& why) {
  throw ConfigError(strformat("mapping file line %zu: %s", line_no,
                              why.c_str()));
}

}  // namespace

void write_mapping(std::ostream& out, const ModelGraph& model,
                   const SystemConfig& sys, const Mapping& mapping,
                   const LocalityPlan& plan) {
  out << kHeader << '\n';
  out << "model " << model.name() << '\n';

  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&mapping](LayerId l, LayerId r) {
    return mapping.seq_of(l) < mapping.seq_of(r);
  });
  for (const LayerId id : order) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    out << "layer " << model.layer(id).name << " -> "
        << sys.spec(mapping.acc_of(id)).name;
    if (plan.pinned(id)) out << " pinned";
    out << '\n';
  }
  for (const LayerId id : order) {
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (plan.fused_in(id, i)) {
        out << "fuse " << model.layer(preds[i]).name << " -> "
            << model.layer(id).name << '\n';
      }
    }
  }
}

LoadedMapping read_mapping(std::istream& in, const ModelGraph& model,
                           const SystemConfig& sys) {
  std::map<std::string, LayerId, std::less<>> layers_by_name;
  for (const LayerId id : model.all_layers()) {
    const auto [it, inserted] =
        layers_by_name.emplace(model.layer(id).name, id);
    if (!inserted)
      throw ConfigError(strformat("model has duplicate layer name '%s'",
                                  it->first.c_str()));
  }
  std::map<std::string, AccId, std::less<>> accs_by_name;
  for (const AccId acc : sys.all_accelerators())
    accs_by_name.emplace(sys.spec(acc).name, acc);

  const auto layer_of = [&](const std::string& name, std::size_t line_no) {
    const auto it = layers_by_name.find(name);
    if (it == layers_by_name.end())
      parse_error(line_no, strformat("unknown layer '%s'", name.c_str()));
    return it->second;
  };

  LoadedMapping out{Mapping(model), LocalityPlan(model)};
  out.plan.ensure_acc_count(sys.accelerator_count());

  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    if (!header_seen) {
      if (line != kHeader) parse_error(line_no, "missing 'h2h-mapping v1' header");
      header_seen = true;
      continue;
    }
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword == "model") {
      continue;  // informational
    } else if (keyword == "layer") {
      std::string name, arrow, acc_name, pinned;
      tokens >> name >> arrow >> acc_name;
      if (arrow != "->") parse_error(line_no, "expected '->'");
      const LayerId id = layer_of(name, line_no);
      const auto acc_it = accs_by_name.find(acc_name);
      if (acc_it == accs_by_name.end())
        parse_error(line_no,
                    strformat("unknown accelerator '%s'", acc_name.c_str()));
      if (out.mapping.is_assigned(id))
        parse_error(line_no, strformat("layer '%s' assigned twice", name.c_str()));
      out.mapping.assign(id, acc_it->second);
      if (tokens >> pinned) {
        if (pinned != "pinned") parse_error(line_no, "trailing junk");
        out.plan.set_pinned(id, true);
      }
    } else if (keyword == "fuse") {
      std::string producer, arrow, consumer;
      tokens >> producer >> arrow >> consumer;
      if (arrow != "->") parse_error(line_no, "expected '->'");
      const LayerId p = layer_of(producer, line_no);
      const LayerId c = layer_of(consumer, line_no);
      const auto preds = model.graph().preds(c);
      const auto it = std::find(preds.begin(), preds.end(), p);
      if (it == preds.end())
        parse_error(line_no, strformat("'%s' -> '%s' is not a model edge",
                                       producer.c_str(), consumer.c_str()));
      out.plan.set_fused_in(
          c, static_cast<std::size_t>(it - preds.begin()), true);
    } else {
      parse_error(line_no, strformat("unknown directive '%s'", keyword.c_str()));
    }
  }
  if (!header_seen) throw ConfigError("mapping file is empty");
  if (!out.mapping.complete())
    throw ConfigError("mapping file does not cover every layer");
  out.mapping.validate(model, sys);
  return out;
}

}  // namespace h2h
