// G_model: the heterogeneous-model dependency graph of the paper's §3.
// A Digraph whose nodes carry Layer payloads plus model-wide metadata.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "model/layer.h"

namespace h2h {

using LayerId = NodeId;

struct ModelStats {
  std::uint64_t total_params = 0;
  std::uint64_t total_macs = 0;
  Bytes total_weight_bytes = 0;
  Bytes total_activation_bytes = 0;  // sum of per-layer output tensors
  std::size_t node_count = 0;        // all graph nodes
  std::size_t compute_layer_count = 0;  // Conv + FC + LSTM (paper's "layers")
  std::uint32_t modality_count = 0;     // distinct non-zero modality tags
};

class ModelGraph {
 public:
  /// `dtype_bytes`: element size for weights and activations. The surveyed
  /// accelerators mostly use 16-bit fixed point; 2 is the default.
  explicit ModelGraph(std::string name, std::uint32_t dtype_bytes = 2);

  /// Append a layer whose inputs are `inputs` (producer layers).
  LayerId add_layer(Layer layer, std::span<const LayerId> inputs = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t dtype_bytes() const noexcept { return dtype_bytes_; }
  [[nodiscard]] const Digraph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Inference batch size. Activations and compute scale linearly with it;
  /// weights are loaded once per inference regardless (the paper evaluates
  /// batch 1; the batch ablation bench sweeps this).
  void set_batch(std::uint32_t batch) {
    H2H_EXPECTS(batch >= 1);
    batch_ = batch;
  }
  [[nodiscard]] std::uint32_t batch() const noexcept { return batch_; }

  [[nodiscard]] const Layer& layer(LayerId id) const {
    H2H_EXPECTS(graph_.contains(id));
    return layers_[id.value];
  }

  /// Stamp `caps` as the required-capability mask of every placeable
  /// (non-Input) layer — a tenant's capability constraint applies to its
  /// whole model (src/tenant/). Call before building any CostTable over
  /// this graph: the table's freshness check does not track caps.
  void stamp_required_caps(std::uint32_t caps) noexcept {
    for (Layer& l : layers_)
      if (l.kind != LayerKind::Input) l.required_caps = caps;
  }

  /// Bytes moved along edge producer -> consumer (the producer's output
  /// tensor for the whole batch; Concat consumers read each input in full).
  [[nodiscard]] Bytes edge_bytes(LayerId producer) const {
    return layer(producer).out_bytes(dtype_bytes_) * batch_;
  }

  [[nodiscard]] Bytes weight_bytes(LayerId id) const {
    return layer(id).weight_bytes(dtype_bytes_);
  }

  [[nodiscard]] ModelStats stats() const;

  /// Structural + shape validation; throws ConfigError on:
  ///  - cyclic graph, empty graph
  ///  - Input layers with predecessors / non-Input layers without any
  ///  - arity violations (Conv/FC/LSTM/Pool take 1 input; Eltwise/Concat >= 2)
  ///  - Eltwise input size mismatches; Concat channel-sum mismatches
  ///  - Conv/FC/LSTM input element-count mismatches vs the producer
  void validate() const;

  /// Convenience for range-for over ids.
  [[nodiscard]] std::vector<LayerId> all_layers() const;

 private:
  std::string name_;
  std::uint32_t dtype_bytes_;
  std::uint32_t batch_ = 1;
  Digraph graph_;
  std::vector<Layer> layers_;
};

}  // namespace h2h
