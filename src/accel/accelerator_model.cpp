#include "accel/accelerator_model.h"

#include "util/error.h"
#include "util/str.h"

namespace h2h {

void AcceleratorSpec::validate() const {
  const auto bad = [&](const char* why) {
    throw ConfigError(strformat("accelerator '%s': %s", name.c_str(), why));
  };
  if (name.empty()) throw ConfigError("accelerator with empty name");
  if (peak_macs_per_cycle == 0) bad("peak_macs_per_cycle must be > 0");
  if (pe.size() == 0) bad("PE array must be non-empty");
  if (freq_hz <= 0) bad("frequency must be > 0");
  if (dram_bandwidth <= 0) bad("local DRAM bandwidth must be > 0");
  if (energy_per_mac < 0 || energy_per_dram_byte < 0 || link_power < 0)
    bad("energy coefficients must be >= 0");
  if (bw_acc_override < 0) bad("bw_acc_override must be >= 0");
  if (arith_bytes < 1 || arith_bytes > 8) bad("arith_bytes must be in [1,8]");
  if (!kinds.conv && !kinds.fc && !kinds.lstm)
    bad("accelerator supports no compute layer kind");
}

bool AcceleratorModel::supports(LayerKind kind) const noexcept {
  return spec().kinds.supports(kind);
}

double AcceleratorModel::compute_energy(const Layer& layer) const {
  const AcceleratorSpec& s = spec();
  // Vector ops (pool/eltwise) switch far less logic than a MAC; 1/4 is a
  // conventional rough ratio for compare/add vs multiply-accumulate.
  return static_cast<double>(layer.macs()) * s.energy_per_mac +
         static_cast<double>(layer.light_ops()) * s.energy_per_mac * 0.25;
}

}  // namespace h2h
