#include "system/interconnect.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <limits>

#include "util/error.h"
#include "util/str.h"
#include "util/units.h"

namespace h2h {
namespace {

[[nodiscard]] std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv_mix(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv_mix(h, bits);
}

}  // namespace

std::string_view to_string(LinkShape shape) noexcept {
  switch (shape) {
    case LinkShape::Uniform: return "uniform";
    case LinkShape::Mixed: return "mixed";
    case LinkShape::Hierarchical: return "hierarchical";
  }
  return "?";
}

Interconnect Interconnect::uniform(double bw) {
  if (!(bw > 0))
    throw ConfigError("interconnect: uniform bandwidth must be > 0");
  Interconnect ic;
  ic.shape_ = LinkShape::Uniform;
  ic.base_bw_ = bw;
  return ic;
}

Interconnect Interconnect::mixed(double default_bw,
                                 std::vector<Override> overrides) {
  if (!(default_bw > 0))
    throw ConfigError("interconnect: mixed default bandwidth must be > 0");
  std::sort(overrides.begin(), overrides.end());
  for (std::size_t i = 0; i < overrides.size(); ++i) {
    if (!(overrides[i].second > 0))
      throw ConfigError(strformat("interconnect: uplink override for acc %u "
                                  "must be > 0",
                                  overrides[i].first));
    if (i > 0 && overrides[i].first == overrides[i - 1].first)
      throw ConfigError(strformat("interconnect: duplicate uplink override "
                                  "for acc %u",
                                  overrides[i].first));
  }
  Interconnect ic;
  ic.shape_ = LinkShape::Mixed;
  ic.base_bw_ = default_bw;
  ic.overrides_ = std::move(overrides);
  return ic;
}

Interconnect Interconnect::hierarchical(const HierarchicalSpec& spec) {
  if (spec.group_size < 1)
    throw ConfigError("interconnect: hierarchical group_size must be >= 1");
  if (!(spec.intra_bw > 0) || !(spec.uplink_bw > 0))
    throw ConfigError(
        "interconnect: hierarchical intra/uplink bandwidths must be > 0");
  if (spec.host_bw < 0)
    throw ConfigError("interconnect: hierarchical host bandwidth must be >= 0");
  if (spec.hop_latency_s < 0)
    throw ConfigError("interconnect: hop latency must be >= 0");
  Interconnect ic;
  ic.shape_ = LinkShape::Hierarchical;
  ic.hier_ = spec;
  if (ic.hier_.host_bw == 0) ic.hier_.host_bw = spec.uplink_bw;
  ic.base_bw_ = ic.hier_.host_bw;
  return ic;
}

void Interconnect::bind(std::size_t acc_count) {
  if (acc_count == 0)
    throw ConfigError("interconnect: cannot bind to an empty system");
  for (const Override& o : overrides_) {
    if (o.first >= acc_count)
      throw ConfigError(strformat("interconnect: uplink override for acc %u "
                                  "out of range (system has %zu)",
                                  o.first, acc_count));
  }
  acc_count_ = acc_count;
  derive();
}

double Interconnect::base_bw() const noexcept {
  return shape_ == LinkShape::Hierarchical ? hier_.host_bw : base_bw_;
}

void Interconnect::set_base_bw(double bw) {
  H2H_EXPECTS(bw > 0);
  if (shape_ == LinkShape::Hierarchical) {
    hier_.host_bw = bw;
  } else {
    base_bw_ = bw;
  }
  if (bound()) derive();
}

void Interconnect::set_link_degrade(std::uint32_t acc, double factor) {
  H2H_EXPECTS(bound());
  if (acc >= acc_count_)
    throw ConfigError(strformat("interconnect: link degrade for acc %u out of "
                                "range (system has %zu)",
                                acc, acc_count_));
  if (!(factor > 0) || factor > 1)
    throw ConfigError(strformat("interconnect: link degrade factor for acc %u "
                                "must be in (0, 1]",
                                acc));
  const auto it = std::lower_bound(
      degrades_.begin(), degrades_.end(), acc,
      [](const Override& o, std::uint32_t a) { return o.first < a; });
  if (factor == 1) {
    if (it != degrades_.end() && it->first == acc) degrades_.erase(it);
  } else if (it != degrades_.end() && it->first == acc) {
    it->second = factor;
  } else {
    degrades_.insert(it, Override{acc, factor});
  }
  derive();
}

double Interconnect::link_degrade(std::uint32_t acc) const noexcept {
  for (const Override& d : degrades_) {
    if (d.first == acc) return d.second;
    if (d.first > acc) break;  // sorted
  }
  return 1;
}

double Interconnect::uplink(std::uint32_t acc) const {
  for (const Override& o : overrides_) {
    if (o.first == acc) return o.second;
    if (o.first > acc) break;  // sorted
  }
  return base_bw_;
}

double Interconnect::bandwidth(AccId a, AccId b) const {
  H2H_EXPECTS(bound());
  H2H_EXPECTS(!(a.is_host() && b.is_host()));
  H2H_EXPECTS(a.is_host() || a.value < acc_count_);
  H2H_EXPECTS(b.is_host() || b.value < acc_count_);
  double raw = base_bw_;
  switch (shape_) {
    case LinkShape::Uniform:
      raw = base_bw_;
      break;
    case LinkShape::Mixed: {
      // A pair runs at the slower endpoint's uplink; the host constrains
      // nothing, so a host link is the accelerator's own uplink.
      if (a.is_host()) raw = uplink(b.value);
      else if (b.is_host()) raw = uplink(a.value);
      else raw = std::min(uplink(a.value), uplink(b.value));
      break;
    }
    case LinkShape::Hierarchical: {
      if (a.is_host() || b.is_host()) raw = hier_.host_bw;
      else
        raw = group_of(a.value) == group_of(b.value) ? hier_.intra_bw
                                                     : hier_.uplink_bw;
      break;
    }
  }
  if (degrades_.empty()) return raw;
  // A degraded endpoint throttles every link it touches; the pair moves at
  // the slower endpoint's factor. The host never degrades (factor 1).
  double factor = 1;
  if (!a.is_host()) factor = std::min(factor, link_degrade(a.value));
  if (!b.is_host()) factor = std::min(factor, link_degrade(b.value));
  return raw * factor;
}

double Interconnect::latency(AccId a, AccId b) const {
  H2H_EXPECTS(bound());
  H2H_EXPECTS(!(a.is_host() && b.is_host()));
  if (shape_ != LinkShape::Hierarchical || hier_.hop_latency_s == 0) return 0;
  // Hop counts through the switch tree: one switch within a group, the
  // fabric spine to the host, and up-across-down between groups.
  std::uint32_t hops = 3;
  if (a.is_host() || b.is_host()) hops = 2;
  else if (group_of(a.value) == group_of(b.value)) hops = 1;
  return hier_.hop_latency_s * static_cast<double>(hops);
}

void Interconnect::derive() {
  // Enumerate the distinct link speeds the bound system can exhibit; the
  // uniformity flag gates the consumers' scalar fast path, so it must be
  // exact (a false positive would silently change charged transfer times).
  min_bw_ = std::numeric_limits<double>::infinity();
  max_bw_ = 0;
  const auto note = [this](double bw) {
    min_bw_ = std::min(min_bw_, bw);
    max_bw_ = std::max(max_bw_, bw);
  };
  bool zero_latency = true;
  if (shape_ == LinkShape::Hierarchical)
    zero_latency = hier_.hop_latency_s == 0;
  if (!degrades_.empty()) {
    // Live link derating breaks the per-shape shortcuts: enumerate every
    // effective link (host and pairs) exactly so the uniformity verdict
    // stays a ground truth, not an approximation. O(A^2), repair-path only.
    const AccId host = AccId::host();
    for (std::uint32_t a = 0; a < acc_count_; ++a) {
      note(bandwidth(AccId{a}, host));
      for (std::uint32_t b = a + 1; b < acc_count_; ++b)
        note(bandwidth(AccId{a}, AccId{b}));
    }
  } else {
    switch (shape_) {
      case LinkShape::Uniform:
        note(base_bw_);
        break;
      case LinkShape::Mixed:
        for (std::uint32_t a = 0; a < acc_count_; ++a) note(uplink(a));
        break;
      case LinkShape::Hierarchical: {
        note(hier_.host_bw);
        const std::size_t first_group =
            std::min<std::size_t>(hier_.group_size, acc_count_);
        if (first_group >= 2) note(hier_.intra_bw);
        if (acc_count_ > hier_.group_size) note(hier_.uplink_bw);
        break;
      }
    }
  }
  uniform_ = min_bw_ == max_bw_ && zero_latency;
  fingerprint_ =
      fnv_mix(params_fingerprint(), static_cast<std::uint64_t>(acc_count_));
}

std::uint64_t Interconnect::params_fingerprint() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv_mix(h, static_cast<std::uint64_t>(shape_));
  h = fnv_mix(h, base_bw_);
  for (const Override& o : overrides_) {
    h = fnv_mix(h, static_cast<std::uint64_t>(o.first));
    h = fnv_mix(h, o.second);
  }
  if (shape_ == LinkShape::Hierarchical) {
    h = fnv_mix(h, static_cast<std::uint64_t>(hier_.group_size));
    h = fnv_mix(h, hier_.intra_bw);
    h = fnv_mix(h, hier_.uplink_bw);
    h = fnv_mix(h, hier_.host_bw);
    h = fnv_mix(h, hier_.hop_latency_s);
  }
  // Degrades mix in only when present, so undegraded fingerprints are
  // byte-for-byte what they were before the repair subsystem existed.
  for (const Override& d : degrades_) {
    h = fnv_mix(h, std::uint64_t{d.first} | (std::uint64_t{1} << 32));
    h = fnv_mix(h, d.second);
  }
  return h;
}

namespace {

constexpr std::string_view kLinksUsage =
    "expected uniform:<GB/s> | mixed:<GB/s>[,<acc>=<GB/s>...] | "
    "hier:group=<n>,intra=<GB/s>,uplink=<GB/s>[,host=<GB/s>][,lat_us=<us>]";

[[nodiscard]] double parse_double(std::string_view text,
                                  std::string_view what) {
  double v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw ConfigError(strformat("links: %.*s is not a number ('%.*s'); %.*s",
                                static_cast<int>(what.size()), what.data(),
                                static_cast<int>(text.size()), text.data(),
                                static_cast<int>(kLinksUsage.size()),
                                kLinksUsage.data()));
  return v;
}

[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t p = s.find(sep);
    if (p == std::string_view::npos) {
      out.push_back(s);
      return out;
    }
    out.push_back(s.substr(0, p));
    s.remove_prefix(p + 1);
  }
}

}  // namespace

Interconnect parse_links_spec(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos)
    throw ConfigError(strformat("links: missing shape; %.*s",
                                static_cast<int>(kLinksUsage.size()),
                                kLinksUsage.data()));
  const std::string_view shape = spec.substr(0, colon);
  const std::vector<std::string_view> parts =
      split(spec.substr(colon + 1), ',');

  if (shape == "uniform") {
    if (parts.size() != 1)
      throw ConfigError(strformat("links: uniform takes one bandwidth; %.*s",
                                  static_cast<int>(kLinksUsage.size()),
                                  kLinksUsage.data()));
    return Interconnect::uniform(gbps(parse_double(parts[0], "bandwidth")));
  }

  if (shape == "mixed") {
    const double dflt = gbps(parse_double(parts[0], "default bandwidth"));
    std::vector<Interconnect::Override> overrides;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      if (eq == std::string_view::npos)
        throw ConfigError(strformat("links: mixed override '%.*s' must be "
                                    "<acc>=<GB/s>",
                                    static_cast<int>(parts[i].size()),
                                    parts[i].data()));
      const double idx = parse_double(parts[i].substr(0, eq), "acc index");
      if (idx < 0 || idx != static_cast<double>(
                                static_cast<std::uint32_t>(idx)))
        throw ConfigError("links: acc index must be a non-negative integer");
      overrides.emplace_back(
          static_cast<std::uint32_t>(idx),
          gbps(parse_double(parts[i].substr(eq + 1), "override bandwidth")));
    }
    return Interconnect::mixed(dflt, std::move(overrides));
  }

  if (shape == "hier") {
    Interconnect::HierarchicalSpec h;
    h.group_size = 0;
    for (const std::string_view part : parts) {
      const std::size_t eq = part.find('=');
      if (eq == std::string_view::npos)
        throw ConfigError(strformat("links: hier parameter '%.*s' must be "
                                    "key=value; %.*s",
                                    static_cast<int>(part.size()), part.data(),
                                    static_cast<int>(kLinksUsage.size()),
                                    kLinksUsage.data()));
      const std::string_view key = part.substr(0, eq);
      const double v = parse_double(part.substr(eq + 1), key);
      if (key == "group") h.group_size = static_cast<std::uint32_t>(v);
      else if (key == "intra") h.intra_bw = gbps(v);
      else if (key == "uplink") h.uplink_bw = gbps(v);
      else if (key == "host") h.host_bw = gbps(v);
      else if (key == "lat_us") h.hop_latency_s = v * 1e-6;
      else
        throw ConfigError(strformat("links: unknown hier parameter '%.*s'; "
                                    "%.*s",
                                    static_cast<int>(key.size()), key.data(),
                                    static_cast<int>(kLinksUsage.size()),
                                    kLinksUsage.data()));
    }
    if (h.group_size == 0 || h.intra_bw == 0 || h.uplink_bw == 0)
      throw ConfigError(strformat("links: hier requires group, intra, and "
                                  "uplink; %.*s",
                                  static_cast<int>(kLinksUsage.size()),
                                  kLinksUsage.data()));
    return Interconnect::hierarchical(h);
  }

  throw ConfigError(strformat("links: unknown shape '%.*s'; %.*s",
                              static_cast<int>(shape.size()), shape.data(),
                              static_cast<int>(kLinksUsage.size()),
                              kLinksUsage.data()));
}

}  // namespace h2h
