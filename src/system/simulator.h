// The system-level performance model: given a complete Mapping and a
// LocalityPlan, compute per-layer timing, system latency (makespan), energy,
// and the communication/computation decomposition of Fig. 5(a).
//
// Execution semantics (DESIGN.md §4):
//  - Every non-Input layer runs on its accelerator; its duration is
//    t_in + t_weight + t_compute + t_out (transfers are not overlapped with
//    compute — the paper's latency blocks include transfer time).
//  - Transfers use the host link at BW_acc unless the plan localizes them
//    (pinned weights and fused activations move at the local DRAM rate).
//    Under a non-uniform Interconnect, each unfused in-edge is instead
//    charged on the link between its producer's accelerator and the
//    consumer's (host for Input producers); weights and output write-backs
//    keep using the consumer's host link, plus any per-hop latency. The
//    uniform case takes a fast path that is bit-identical to the scalar
//    BW_acc model (DESIGN.md §9).
//  - A producer writes its output to the host once if any consumer is
//    remote/unfused (or it is a model output); retention for fused
//    consumers is free because the output materializes in the
//    accelerator's DRAM in either case.
//  - Each accelerator executes its layers FIFO in mapping-sequence order;
//    start = max(predecessors' finish, accelerator free time).
#pragma once

#include <span>
#include <vector>

#include "system/cost_table.h"
#include "system/energy.h"
#include "system/mapping_state.h"

namespace h2h {

struct LayerTiming {
  double start = 0;
  double finish = 0;
  double t_in = 0;       // activation in-transfer time
  double t_weight = 0;   // weight transfer time
  double t_compute = 0;  // on-chip compute time
  double t_out = 0;      // activation out-transfer time
  double t_host = 0;     // host-link share of the transfer time
  double t_local = 0;    // local-DRAM share of the transfer time
  Bytes host_bytes = 0;   // bytes moved over the host link
  Bytes local_bytes = 0;  // bytes moved through local DRAM

  [[nodiscard]] double duration() const noexcept {
    return t_in + t_weight + t_compute + t_out;
  }
};

struct ScheduleResult {
  double latency = 0;  // makespan, seconds
  EnergyBreakdown energy;
  double comp_time = 0;   // sum of t_compute over layers
  double local_time = 0;  // sum of local-DRAM transfer time
  double host_time = 0;   // sum of host-link transfer time
  Bytes host_bytes = 0;
  Bytes local_bytes = 0;
  std::vector<LayerTiming> timings;  // indexed by LayerId::value

  /// Computation share of total busy time (Fig. 5(a)). "Communication" is
  /// cross-accelerator (host-link) traffic — the quantity H2H optimizes;
  /// on-accelerator local DRAM access counts toward the computation side.
  [[nodiscard]] double comp_ratio() const noexcept {
    const double busy = comp_time + local_time + host_time;
    return busy > 0 ? (comp_time + local_time) / busy : 1.0;
  }
};

class Simulator {
 public:
  /// Builds the (layer x accelerator) cost table up front: after this, no
  /// query path invokes the virtual AcceleratorModel interface.
  Simulator(const ModelGraph& model, const SystemConfig& sys)
      : model_(&model), sys_(&sys), costs_(model, sys) {}

  [[nodiscard]] const ModelGraph& model() const noexcept { return *model_; }
  [[nodiscard]] const SystemConfig& sys() const noexcept { return *sys_; }

  /// The precomputed cost matrices every query below reads from. Rebuilt
  /// lazily if a snapshot knob moved since construction (batch size, layer
  /// count, system-wide BW_acc — see CostTable::fresh). The reference (and
  /// any span taken from it) is invalidated by such a rebuild, so holders
  /// must not mutate those knobs while they keep it.
  [[nodiscard]] const CostTable& costs() const {
    if (!costs_.fresh(*model_, *sys_)) costs_ = CostTable(*model_, *sys_);
    return costs_;
  }

  /// True when the built table still matches the model/system snapshot
  /// knobs; false means the next costs() call pays a full rebuild (the
  /// Planner uses this to bill that rebuild as setup, not search).
  [[nodiscard]] bool costs_fresh() const noexcept {
    return costs_.fresh(*model_, *sys_);
  }

  /// Transfer/compute components of one layer under the plan (start/finish
  /// are left zero). Input layers have all-zero components.
  [[nodiscard]] LayerTiming layer_components(LayerId id, const Mapping& m,
                                             const LocalityPlan& plan) const;

  /// Full schedule + energy for a complete mapping. Sequence numbers must be
  /// a topological order of the model graph (the H2H passes guarantee this).
  [[nodiscard]] ScheduleResult simulate(const Mapping& m,
                                        const LocalityPlan& plan) const;

  /// Energy of one scheduled layer (used by simulate and the incremental
  /// path).
  [[nodiscard]] EnergyBreakdown layer_energy(LayerId id, const Mapping& m,
                                             const LayerTiming& t) const;

  /// Duration of `id` if it ran on `acc` under step-1 semantics (zero local
  /// DRAM: weights, IFM, and OFM all cross the host link). The OFM host
  /// write is unconditional because zero locality implies no fused
  /// consumers — matching layer_components under an all-unfused plan. Used
  /// by the computation-prioritized mapper's delta evaluation.
  [[nodiscard]] double unlocalized_duration(LayerId id, AccId acc) const;

 private:
  /// layer_components under a non-uniform topology: per-edge link charges
  /// from the cost table's edge-cost array.
  [[nodiscard]] LayerTiming linked_components(LayerId id, const Mapping& m,
                                              const LocalityPlan& plan,
                                              const CostTable& costs,
                                              AccId a) const;

  const ModelGraph* model_;
  const SystemConfig* sys_;
  mutable CostTable costs_;
};

}  // namespace h2h
