#include <gtest/gtest.h>

#include <sstream>

#include "core/planner.h"
#include "system/mapping_io.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(MappingIo, RoundTripPreservesScheduleExactly) {
  const ModelGraph model = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse r = plan_once(model, sys);
  const Simulator sim(model, sys);
  const ScheduleResult before = sim.simulate(r.mapping, r.plan);

  std::stringstream buffer;
  write_mapping(buffer, model, sys, r.mapping, r.plan);
  const LoadedMapping loaded = read_mapping(buffer, model, sys);
  const ScheduleResult after = sim.simulate(loaded.mapping, loaded.plan);

  EXPECT_DOUBLE_EQ(after.latency, before.latency);
  EXPECT_DOUBLE_EQ(after.energy.total(), before.energy.total());
  for (const LayerId id : model.all_layers()) {
    EXPECT_EQ(loaded.mapping.acc_of(id), r.mapping.acc_of(id));
    EXPECT_EQ(loaded.plan.pinned(id), r.plan.pinned(id));
  }
  EXPECT_EQ(loaded.plan.fused_edge_count(), r.plan.fused_edge_count());
}

TEST(MappingIo, FormatIsHumanReadable) {
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse r = plan_once(model, sys);
  std::ostringstream out;
  write_mapping(out, model, sys, r.mapping, r.plan);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("h2h-mapping v1", 0), 0u);  // header first
  EXPECT_NE(text.find("model chain"), std::string::npos);
  EXPECT_NE(text.find("layer convA -> "), std::string::npos);
  EXPECT_NE(text.find("pinned"), std::string::npos);
}

TEST(MappingIo, RejectsMalformedInputs) {
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_mini_hetero_system();

  const auto expect_reject = [&](const std::string& content) {
    std::istringstream in(content);
    EXPECT_THROW((void)read_mapping(in, model, sys), ConfigError) << content;
  };

  expect_reject("");  // empty
  expect_reject("not-a-header\n");
  expect_reject("h2h-mapping v1\nlayer nope -> CONV\n");       // unknown layer
  expect_reject("h2h-mapping v1\nlayer convA -> NOPE\n");      // unknown acc
  expect_reject("h2h-mapping v1\nlayer convA -- CONV\n");      // bad arrow
  expect_reject("h2h-mapping v1\nwat convA -> CONV\n");        // bad keyword
  expect_reject(
      "h2h-mapping v1\nlayer convA -> CONV\nlayer convA -> GEN\n");  // dup
  // Incomplete mapping (fcC missing).
  expect_reject("h2h-mapping v1\nlayer convA -> CONV\nlayer convB -> CONV\n");
  // Fusing a non-edge.
  expect_reject(
      "h2h-mapping v1\nlayer convA -> CONV\nlayer convB -> CONV\n"
      "layer fcC -> LSTM\nfuse convA -> fcC\n");
  // Valid placement but unsupported kind (FC on the conv-only accelerator).
  expect_reject(
      "h2h-mapping v1\nlayer convA -> CONV\nlayer convB -> CONV\n"
      "layer fcC -> CONV\n");
}

TEST(MappingIo, CommentsAndBlankLinesIgnored) {
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  std::istringstream in(
      "h2h-mapping v1\n"
      "# a comment\n"
      "\n"
      "model chain\n"
      "layer convA -> CONV pinned\n"
      "layer convB -> CONV\n"
      "layer fcC -> LSTM\n"
      "fuse convA -> convB\n");
  const LoadedMapping loaded = read_mapping(in, model, sys);
  EXPECT_TRUE(loaded.plan.pinned(LayerId{1}));
  EXPECT_FALSE(loaded.plan.pinned(LayerId{2}));
  EXPECT_TRUE(loaded.plan.edge_fused(model, LayerId{1}, LayerId{2}));
  EXPECT_EQ(loaded.mapping.acc_of(LayerId{3}), AccId{2});
}

}  // namespace
}  // namespace h2h
