#include <gtest/gtest.h>

#include "core/activation_fusion.h"
#include "core/comp_prioritized.h"
#include "core/weight_locality.h"
#include "system/incremental.h"
#include "test_helpers.h"

namespace h2h {
namespace {

void expect_same_timings(const IncrementalSchedule& inc, const Simulator& sim,
                         const Mapping& m, const LocalityPlan& plan) {
  const ScheduleResult full = sim.simulate(m, plan);
  for (std::uint32_t i = 0; i < full.timings.size(); ++i) {
    const LayerTiming& a = inc.timing(LayerId{i});
    const LayerTiming& b = full.timings[i];
    EXPECT_DOUBLE_EQ(a.start, b.start) << "node " << i;
    EXPECT_DOUBLE_EQ(a.finish, b.finish) << "node " << i;
    EXPECT_DOUBLE_EQ(a.duration(), b.duration()) << "node " << i;
  }
  EXPECT_DOUBLE_EQ(inc.latency(), full.latency);
  const ScheduleResult agg = inc.result(m);
  EXPECT_DOUBLE_EQ(agg.energy.total(), full.energy.total());
  EXPECT_DOUBLE_EQ(agg.comp_time, full.comp_time);
  EXPECT_DOUBLE_EQ(agg.host_time, full.host_time);
}

TEST(Incremental, ResetMatchesFullSimulation) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  expect_same_timings(inc, sim, mapping, plan);
}

TEST(Incremental, ComponentRefreshAfterPinning) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  // Pin everything (weight-locality pass) and refresh all layers.
  optimize_weight_locality(sim, mapping, plan);
  const std::vector<LayerId> all = m.all_layers();
  inc.refresh_components(mapping, plan, all);
  expect_same_timings(inc, sim, mapping, plan);
}

TEST(Incremental, RemapMatchesFullSimulation) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  // Move one fc layer between the generic and LSTM accelerators.
  LayerId victim{};
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == LayerKind::FullyConnected) victim = id;
  ASSERT_TRUE(victim.valid());
  const AccId src = mapping.acc_of(victim);
  const AccId dst = src == AccId{1} ? AccId{2} : AccId{1};

  mapping.reassign(victim, dst);
  const std::array<AccId, 2> touched{src, dst};
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  inc.apply_remap(mapping, plan, victim, src);

  expect_same_timings(inc, sim, mapping, plan);
  EXPECT_GT(inc.retime_count(), 0u);
}

// Regression for the static-power accounting drift: both simulators must
// derive the static term from the one shared SystemConfig::static_energy
// helper, so with a nonzero idle power the EnergyBreakdowns have to be
// bit-identical field by field.
TEST(Incremental, EnergyIdenticalToSimulatorUnderStaticPower) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  std::vector<AcceleratorPtr> accs;
  accs.push_back(make_analytical(testing::simple_spec("U0", gib(1))));
  accs.push_back(make_analytical(testing::simple_spec("U1", gib(1))));
  HostParams host;
  host.bw_acc = 1e9;
  host.static_power_w = 1.5;
  const SystemConfig sys(std::move(accs), host);
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  const EnergyBreakdown full = sim.simulate(mapping, plan).energy;
  const EnergyBreakdown agg = inc.result(mapping).energy;
  const EnergyBreakdown fast = inc.energy(mapping);
  EXPECT_GT(full.static_power, 0.0);
  for (const EnergyBreakdown& e : {agg, fast}) {
    EXPECT_DOUBLE_EQ(e.compute, full.compute);
    EXPECT_DOUBLE_EQ(e.link, full.link);
    EXPECT_DOUBLE_EQ(e.dram, full.dram);
    EXPECT_DOUBLE_EQ(e.static_power, full.static_power);
    EXPECT_DOUBLE_EQ(e.total(), full.total());
  }
}

TEST(Incremental, JournalRollbackRestoresScheduleExactly) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  const double latency_before = inc.latency();

  // Probe a move under all three journals, then roll everything back.
  LayerId victim{};
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == LayerKind::FullyConnected) victim = id;
  ASSERT_TRUE(victim.valid());
  const AccId src = mapping.acc_of(victim);
  const AccId dst = src == AccId{1} ? AccId{2} : AccId{1};

  mapping.begin_journal();
  plan.begin_journal();
  inc.begin_journal();
  mapping.reassign(victim, dst);
  const std::array<AccId, 2> touched{src, dst};
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  std::vector<LayerId> dirty;
  plan.journal_touched_layers(m, dirty);
  inc.apply_remap(mapping, plan, victim, src, dirty);
  inc.rollback_journal();
  plan.rollback_journal();
  mapping.rollback_journal();

  EXPECT_EQ(mapping.acc_of(victim), src);
  EXPECT_DOUBLE_EQ(inc.latency(), latency_before);
  expect_same_timings(inc, sim, mapping, plan);

  // The rolled-back schedule must still accept further remaps correctly
  // (queues and positions restored, not just timings).
  mapping.reassign(victim, dst);
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  inc.apply_remap(mapping, plan, victim, src);
  expect_same_timings(inc, sim, mapping, plan);
}

// The overlay probe must return exactly the makespan applying the move
// would produce — bit for bit — while leaving the committed schedule, its
// queues, and its timings untouched (no journal involved at all).
TEST(Incremental, ProbeRemapMatchesApplyAndLeavesStateUntouched) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  const double latency_before = inc.latency();

  LayerId victim{};
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == LayerKind::FullyConnected) victim = id;
  ASSERT_TRUE(victim.valid());
  const AccId src = mapping.acc_of(victim);
  const AccId dst = src == AccId{1} ? AccId{2} : AccId{1};
  const std::array<AccId, 2> touched{src, dst};

  // Probe under the mapping/plan journals only — the schedule needs none.
  mapping.begin_journal();
  plan.begin_journal();
  mapping.reassign(victim, dst);
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  std::vector<LayerId> dirty;
  plan.journal_touched_layers(m, dirty);
  const double probed = inc.probe_remap(mapping, plan, victim, src, dirty);
  const double probed_energy = inc.probe_energy(mapping).total();
  EXPECT_DOUBLE_EQ(probed, sim.simulate(mapping, plan).latency);

  // Committed schedule untouched by the probe.
  EXPECT_DOUBLE_EQ(inc.latency(), latency_before);
  plan.rollback_journal();
  mapping.rollback_journal();
  expect_same_timings(inc, sim, mapping, plan);

  // Apply for real: the probed numbers were exact.
  mapping.reassign(victim, dst);
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  inc.apply_remap(mapping, plan, victim, src);
  EXPECT_DOUBLE_EQ(inc.latency(), probed);
  EXPECT_DOUBLE_EQ(inc.energy(mapping).total(), probed_energy);
  expect_same_timings(inc, sim, mapping, plan);
}

// Property: a random sequence of remaps tracked incrementally stays
// bit-identical to full re-simulation.
class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProperty, RandomRemapSequenceStaysConsistent) {
  Rng rng(GetParam());
  const ModelGraph m = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  const std::vector<LayerId> layers = m.all_layers();
  for (int step = 0; step < 10; ++step) {
    // Pick a random movable layer and a random supporting destination.
    const LayerId node = layers[rng.index(layers.size())];
    if (m.layer(node).kind == LayerKind::Input) continue;
    const auto cands = sys.supporting(m.layer(node).kind);
    const AccId dst = cands[rng.index(cands.size())];
    const AccId src = mapping.acc_of(node);
    if (dst == src) continue;

    mapping.reassign(node, dst);
    const std::array<AccId, 2> touched{src, dst};
    optimize_weight_locality(sim, mapping, plan, {}, touched);
    optimize_activation_fusion(sim, mapping, plan, {}, touched);
    inc.apply_remap(mapping, plan, node, src);

    const ScheduleResult full = sim.simulate(mapping, plan);
    ASSERT_DOUBLE_EQ(inc.latency(), full.latency) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// Property: the cone filter (set_cone_filter) is purely an optimization.
// Across a random interleaving of probes, rollbacks, and accepted applies, a
// filtered schedule and an unfiltered one must produce bit-identical probe
// makespans and final timings — on uniform, mixed, and hierarchical link
// topologies alike. Only the visit count may differ (filtered <=
// unfiltered).
using ConeFilterParam = std::tuple<std::uint64_t, int>;
class ConeFilterProperty : public ::testing::TestWithParam<ConeFilterParam> {};

TEST_P(ConeFilterProperty, BitIdenticalAcrossProbesRollbacksAndApplies) {
  Rng rng(0xC0DE0000 + std::get<0>(GetParam()));
  const int shape = std::get<1>(GetParam());
  const ModelGraph m = testing::make_random_model(rng);
  const SystemConfig sys = [&] {
    switch (shape) {
      case 1: {  // mixed: every third uplink 10x faster
        std::vector<Interconnect::Override> fast;
        for (std::uint32_t i = 0; i < 12; i += 3)
          fast.emplace_back(i, gbps(1.25));
        return SystemConfig::standard(
            Interconnect::mixed(gbps(0.125), std::move(fast)));
      }
      case 2: {  // hierarchical: fast groups, slow fabric, per-hop latency
        Interconnect::HierarchicalSpec spec;
        spec.group_size = 4;
        spec.intra_bw = gbps(1.25);
        spec.uplink_bw = gbps(0.25);
        spec.host_bw = gbps(0.125);
        spec.hop_latency_s = 1e-6;
        return SystemConfig::standard(Interconnect::hierarchical(spec));
      }
      default:
        return SystemConfig::standard(gbps(0.125));
    }
  }();
  ASSERT_EQ(sys.links().uniform_links(), shape == 0);

  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule filtered(sim);
  IncrementalSchedule unfiltered(sim);
  filtered.set_cone_filter(true);
  unfiltered.set_cone_filter(false);
  filtered.reset(mapping, plan);
  unfiltered.reset(mapping, plan);

  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const std::vector<LayerId> layers = m.all_layers();
  std::vector<LayerId> dirty;
  int probes = 0;
  for (int step = 0; step < 40; ++step) {
    const LayerId node = layers[rng.index(layers.size())];
    if (m.layer(node).kind == LayerKind::Input) continue;
    const auto cands = sim.costs().supporting(m.layer(node).kind);
    if (cands.empty()) continue;
    const AccId dst = cands[rng.index(cands.size())];
    const AccId src = mapping.acc_of(node);
    if (dst == src) continue;
    const std::array<AccId, 2> touched{src, dst};

    mapping.begin_journal();
    plan.begin_journal();
    mapping.reassign(node, dst);
    optimize_weight_locality(sim, mapping, plan, {}, touched);
    optimize_activation_fusion(sim, mapping, plan, {}, touched);
    dirty.clear();
    plan.journal_touched_layers(m, dirty);
    if (!sim.costs().uniform_links())
      for (const LayerId s : m.graph().succs(node)) dirty.push_back(s);

    const double with = filtered.probe_remap(mapping, plan, node, src, dirty);
    const double without =
        unfiltered.probe_remap(mapping, plan, node, src, dirty);
    ASSERT_EQ(bits(with), bits(without)) << "probe " << probes;
    ++probes;

    if (step % 3 == 0) {  // accept this move; roll the rest back
      filtered.apply_remap(mapping, plan, node, src, dirty);
      unfiltered.apply_remap(mapping, plan, node, src, dirty);
      plan.commit_journal();
      mapping.commit_journal();
      ASSERT_EQ(bits(filtered.latency()), bits(unfiltered.latency()))
          << "apply at step " << step;
    } else {
      plan.rollback_journal();
      mapping.rollback_journal();
    }
  }
  ASSERT_GT(probes, 0);
  EXPECT_LE(filtered.retime_count(), unfiltered.retime_count());
  expect_same_timings(filtered, sim, mapping, plan);
  expect_same_timings(unfiltered, sim, mapping, plan);
}

std::string cone_filter_param_name(
    const ::testing::TestParamInfo<ConeFilterParam>& info) {
  const char* shape = "uniform";
  if (std::get<1>(info.param) == 1) shape = "mixed";
  if (std::get<1>(info.param) == 2) shape = "hierarchical";
  return std::string(shape) + "_seed" + std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, ConeFilterProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 6),
                       ::testing::Values(0, 1, 2)),
    cone_filter_param_name);

}  // namespace
}  // namespace h2h
