// Extension experiment: batch streaming. The paper evaluates single-sample
// inference; batching amortizes weight traffic (step 2's target) while
// multiplying activation traffic (steps 3-4's target). This bench sweeps
// the batch size and shows where each H2H step earns its keep.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_PipelineUnderBatch(benchmark::State& state) {
  ModelGraph model = make_casia_surf();
  model.set_batch(static_cast<std::uint32_t>(state.range(0)));
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_PipelineUnderBatch)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "batch", "s1->s2 gain", "s2->s3 gain",
                   "s3->s4 gain", "total vs s2"},
                  {TextTable::Align::Left});
  for (const ZooModel id :
       {ZooModel::CasiaSurf, ZooModel::CnnLstm, ZooModel::MoCap}) {
    for (const std::uint32_t batch : {1u, 4u, 16u, 64u}) {
      ModelGraph model = make_model(id);
      model.set_batch(batch);
      const SystemConfig sys =
          SystemConfig::standard(BandwidthSetting::LowMinus);
      const PlanResponse r = plan_once(model, sys);
      const auto gain = [&](std::size_t from, std::size_t to) {
        return format_percent(
            1.0 - r.steps[to].result.latency / r.steps[from].result.latency, 1);
      };
      table.add_row({std::string(zoo_info(id).key), strformat("%u", batch),
                     gain(0, 1), gain(1, 2), gain(2, 3),
                     format_percent(1.0 - r.latency_vs_baseline(), 1)});
    }
  }
  std::cout << "batch-size ablation @ Low- (per-step latency gains):\n";
  table.print(std::cout);
  std::cout << "\n(weight pinning [s1->s2] fades with batch; activation\n"
               "locality [s2->s4] stays — the paper's communication story\n"
               "holds under batching)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
