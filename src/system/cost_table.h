// Precomputed (layer x accelerator) cost matrices — the single cost source
// for the search passes and the simulator (DESIGN.md §3).
//
// Every hot loop used to pay a virtual AcceleratorModel::compute_latency
// call that re-ran the MAESTRO-style tiling roofline per query, and
// unlocalized-duration evaluation re-walked predecessor edges per call. The
// paper's plug-in performance-model design (P_Acc) evaluates each
// (task, device) pair exactly once; this table materializes that: dense
// layer x accelerator matrices of batch-scaled compute latency, compute
// energy, and step-1 unlocalized duration, plus flattened per-layer byte
// footprints and per-accelerator bandwidth/energy scalars. Unsupported
// (layer, accelerator) pairs are skipped at build time and poisoned with
// infinity; a support mask and per-kind candidate lists replace the virtual
// supports() calls.
//
// Link topology: the table snapshots the system's Interconnect. Under a
// uniform topology (uniform_links(), the scalar-BW_acc star) only the
// per-accelerator bw_host scalars exist and consumers take the legacy fast
// path — output stays bit-identical to the pre-topology code. Under a
// non-uniform topology the table additionally materializes the
// (acc+host)^2 link bandwidth/latency matrices and a flat per-(producer
// layer, src, dst) edge-transfer-cost array, so the simulator and the
// remap probes charge each edge on the actual link it crosses with one
// indexed load (L x (A+1)^2 doubles: ~43 MB at 5000 layers x 32
// accelerators — materialized only when non-uniform).
//
// Ownership/lifetime: built by (and owned by) the Simulator at
// construction. The referenced ModelGraph and SystemConfig must outlive the
// table; accelerator specs are immutable after SystemConfig construction,
// so the only knobs that can invalidate a built table are
// ModelGraph::set_batch, ModelGraph::add_layer, and
// SystemConfig::set_bw_acc — fresh() detects all three (the topology
// fingerprint covers the bandwidth knob and any future topology mutators)
// and the Simulator rebuilds lazily. After the build, no query path invokes
// the virtual AcceleratorModel interface (regression-tested with counting
// models).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "model/model_graph.h"
#include "system/system_config.h"

namespace h2h {

class CostTable {
 public:
  /// Evaluates every supported (layer, accelerator) pair once. Values are
  /// bit-identical to the direct AcceleratorModel queries they replace
  /// (pinned by test_cost_table.cpp).
  CostTable(const ModelGraph& model, const SystemConfig& sys);

  /// False when a snapshot knob moved since the build (batch size, layer
  /// count, BW_acc, the link topology — which covers live link degrades —
  /// or the availability/compute-derate state): the owner must rebuild.
  [[nodiscard]] bool fresh(const ModelGraph& model,
                           const SystemConfig& sys) const noexcept {
    return batch_ == model.batch() && layer_count_ == model.layer_count() &&
           host_bw_ == sys.host().bw_acc &&
           links_fp_ == sys.links().fingerprint() &&
           derate_fp_ == sys.derate_fingerprint();
  }

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layer_count_;
  }
  [[nodiscard]] std::size_t acc_count() const noexcept { return acc_count_; }

  [[nodiscard]] bool is_input(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return is_input_[id.value] != 0;
  }
  /// True when `acc` can run `id` and the pair was costed. Always false for
  /// Input layers: they are host-resident and never execute on an
  /// accelerator, even though the kind is structurally "supported".
  [[nodiscard]] bool supported(LayerId id, AccId acc) const {
    return supported_[index(id, acc)] != 0;
  }

  /// Compute latency of the whole batch, seconds (excludes data movement).
  [[nodiscard]] double compute_latency(LayerId id, AccId acc) const {
    H2H_EXPECTS(supported(id, acc));
    return compute_latency_[index(id, acc)];
  }
  /// Compute energy of the whole batch, joules.
  [[nodiscard]] double compute_energy(LayerId id, AccId acc) const {
    H2H_EXPECTS(supported(id, acc));
    return compute_energy_[index(id, acc)];
  }
  /// Step-1 duration: all weights, IFMs, and the OFM cross the host link.
  [[nodiscard]] double unlocalized_duration(LayerId id, AccId acc) const {
    H2H_EXPECTS(!is_input(id));
    H2H_EXPECTS(supported(id, acc));
    return unlocalized_[index(id, acc)];
  }
  /// The layer's whole unlocalized-duration row, indexed by AccId::value
  /// (unsupported cells hold +inf). One contract check per layer instead of
  /// one per (layer, accelerator) read — the step-1 enumeration gathers its
  /// candidate durations from this contiguous row.
  [[nodiscard]] std::span<const double> unlocalized_row(LayerId id) const {
    H2H_EXPECTS(!is_input(id));
    return {unlocalized_.data() + std::size_t{id.value} * acc_count_,
            acc_count_};
  }

  [[nodiscard]] Bytes weight_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return weight_bytes_[id.value];
  }
  /// Bytes of `id`'s output tensor (== ModelGraph::edge_bytes(id)).
  [[nodiscard]] Bytes out_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return out_bytes_[id.value];
  }
  /// Per-in-edge bytes, one entry per graph().preds(id) slot.
  [[nodiscard]] std::span<const Bytes> in_edge_bytes(LayerId id) const {
    H2H_EXPECTS(id.value + 1 < in_offset_.size());
    return {in_bytes_.data() + in_offset_[id.value],
            in_offset_[id.value + 1] - in_offset_[id.value]};
  }
  /// Sum of in_edge_bytes (the aggregated predecessor-input traffic).
  [[nodiscard]] Bytes pred_in_bytes(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return pred_in_bytes_[id.value];
  }

  /// Per-accelerator scalars snapshotted from the specs (no virtual call).
  [[nodiscard]] double bw_host(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return bw_host_[acc.value];
  }
  [[nodiscard]] double bw_local(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return bw_local_[acc.value];
  }
  [[nodiscard]] double link_power(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return link_power_[acc.value];
  }
  [[nodiscard]] double dram_byte_energy(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return dram_byte_energy_[acc.value];
  }
  [[nodiscard]] Bytes dram_capacity(AccId acc) const {
    H2H_EXPECTS(acc.value < acc_count_);
    return dram_capacity_[acc.value];
  }

  /// True when every link of the snapshotted topology runs at one speed
  /// with zero latency — consumers serve transfers from the legacy host-star
  /// fast path (bw_host), which is bit-identical to the scalar-BW_acc code.
  [[nodiscard]] bool uniform_links() const noexcept { return uniform_links_; }

  /// Snapshotted pair link bandwidth (bytes/s) / per-transfer latency (s).
  /// Either endpoint may be AccId::host(). Non-uniform topologies only.
  [[nodiscard]] double link_bw(AccId a, AccId b) const {
    H2H_EXPECTS(!uniform_links_);
    return link_bw_[li(a) * (acc_count_ + 1) + li(b)];
  }
  [[nodiscard]] double link_latency(AccId a, AccId b) const {
    H2H_EXPECTS(!uniform_links_);
    return link_lat_[li(a) * (acc_count_ + 1) + li(b)];
  }

  /// Time to move `producer`'s output tensor across the src->dst link:
  /// out_bytes / link_bw + link latency, one indexed load. Non-uniform
  /// topologies only (the uniform path divides by bw_host directly).
  [[nodiscard]] double edge_transfer_time(LayerId producer, AccId src,
                                          AccId dst) const {
    H2H_EXPECTS(!uniform_links_);
    H2H_EXPECTS(producer.value < layer_count_);
    const std::size_t n = acc_count_ + 1;
    return edge_cost_[(producer.value * n + li(src)) * n + li(dst)];
  }

  /// Accelerators able to run `kind`, ascending (== SystemConfig::supporting
  /// without the per-call allocation and virtual dispatch).
  [[nodiscard]] std::span<const AccId> supporting(LayerKind kind) const {
    H2H_EXPECTS(static_cast<std::size_t>(kind) < kKindCount);
    return supporting_[static_cast<std::size_t>(kind)];
  }

  /// Placement candidates for `id`: the per-kind supporting list further
  /// filtered by the layer's required-capability mask (accel/capability.h).
  /// When no layer in the model carries a mask — every pre-multi-tenant
  /// model — this IS the per-kind span (same pointer), so the step-1
  /// enumeration stays bit-identical. `kind` must be model.layer(id).kind.
  [[nodiscard]] std::span<const AccId> candidates(LayerId id,
                                                  LayerKind kind) const {
    if (cand_offset_.empty()) return supporting(kind);
    H2H_EXPECTS(id.value + 1 < cand_offset_.size());
    return {cand_.data() + cand_offset_[id.value],
            cand_offset_[id.value + 1] - cand_offset_[id.value]};
  }

  /// The layer's compute-affinity accelerator: the supporting accelerator
  /// minimizing pinned-weight execution (compute latency + weight bytes over
  /// local DRAM bandwidth), first minimum winning. Depends only on the cost
  /// table, not on any mapping, so it is evaluated once at build time — the
  /// step-4 candidate generator reads it per probe (DESIGN.md §6). Invalid
  /// for Input layers.
  [[nodiscard]] AccId affinity_acc(LayerId id) const {
    H2H_EXPECTS(id.value < layer_count_);
    return affinity_[id.value];
  }

 private:
  [[nodiscard]] std::size_t index(LayerId id, AccId acc) const {
    H2H_EXPECTS(id.value < layer_count_);
    H2H_EXPECTS(acc.value < acc_count_);
    return static_cast<std::size_t>(id.value) * acc_count_ + acc.value;
  }
  /// Link-matrix index of an endpoint: accelerators 0..A-1, host at A.
  [[nodiscard]] std::size_t li(AccId a) const {
    H2H_EXPECTS(a.is_host() || a.value < acc_count_);
    return a.is_host() ? acc_count_ : a.value;
  }

  static constexpr std::size_t kKindCount =
      static_cast<std::size_t>(LayerKind::Concat) + 1;

  std::size_t layer_count_ = 0;
  std::size_t acc_count_ = 0;
  std::uint32_t batch_ = 1;
  double host_bw_ = 0;
  std::uint64_t links_fp_ = 0;
  std::uint64_t derate_fp_ = 0;
  bool uniform_links_ = true;

  // Non-uniform topologies only: (acc_count_+1)^2 link matrices (host at
  // index acc_count_) and the flat layer x src x dst edge-cost array.
  std::vector<double> link_bw_;
  std::vector<double> link_lat_;
  std::vector<double> edge_cost_;

  // layer x acc, row-major by layer.
  std::vector<double> compute_latency_;
  std::vector<double> compute_energy_;
  std::vector<double> unlocalized_;
  std::vector<std::uint8_t> supported_;

  // per layer.
  std::vector<std::uint8_t> is_input_;
  std::vector<AccId> affinity_;
  std::vector<Bytes> weight_bytes_;
  std::vector<Bytes> out_bytes_;
  std::vector<Bytes> pred_in_bytes_;
  std::vector<std::uint32_t> in_offset_;  // CSR: layer -> first in-edge slot
  std::vector<Bytes> in_bytes_;           // flat, keyed by in-edge slot

  // per accelerator.
  std::vector<double> bw_host_;
  std::vector<double> bw_local_;
  std::vector<double> link_power_;
  std::vector<double> dram_byte_energy_;
  std::vector<Bytes> dram_capacity_;

  std::array<std::vector<AccId>, kKindCount> supporting_;

  // Per-layer capability-filtered candidate CSR; built (and consulted by
  // candidates()) only when some layer carries a required-capability mask.
  std::vector<std::uint32_t> cand_offset_;  // layer -> first slot, size L+1
  std::vector<AccId> cand_;
};

}  // namespace h2h
