#include "core/comp_prioritized.h"

#include <algorithm>
#include <limits>

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

struct NodeCandidates {
  LayerId node;
  std::vector<AccId> accs;       // candidate accelerators
  std::vector<double> durations; // unlocalized duration per candidate
  double ready = 0;              // max predecessor finish
};

/// Candidate accelerators for a layer, honoring support and preference.
std::vector<AccId> candidates_for(const Simulator& sim, LayerId id,
                                  const CompPrioritizedOptions& options) {
  const Layer& layer = sim.model().layer(id);
  if (options.preferred) {
    if (const std::optional<AccId> pref = options.preferred(id);
        pref.has_value() && sim.sys().contains(*pref) &&
        sim.sys().accelerator(*pref).supports(layer.kind)) {
      return {*pref};
    }
  }
  std::vector<AccId> accs = sim.sys().supporting(layer.kind);
  if (accs.empty())
    throw ConfigError(strformat(
        "no accelerator in the system supports layer '%s' (%s)",
        layer.name.c_str(), std::string(to_string(layer.kind)).c_str()));
  return accs;
}

}  // namespace

Mapping computation_prioritized_mapping(const Simulator& sim,
                                        const CompPrioritizedOptions& options) {
  const ModelGraph& model = sim.model();
  const SystemConfig& sys = sim.sys();
  H2H_EXPECTS(options.max_candidates > 0);
  if (!is_dag(model.graph()))
    throw ConfigError(strformat("model '%s' has a dependency cycle",
                                model.name().c_str()));

  Mapping mapping(model);
  std::vector<bool> done(model.layer_count(), false);
  std::vector<double> finish(model.layer_count(), 0.0);
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind == LayerKind::Input) done[id.value] = true;

  std::vector<double> acc_tail(sys.accelerator_count(), 0.0);
  double makespan = 0.0;

  while (true) {
    const std::vector<LayerId> front = frontier(model.graph(), done);
    if (front.empty()) break;

    // Gather per-node candidates and cache durations / readiness.
    std::vector<NodeCandidates> nodes;
    nodes.reserve(front.size());
    for (const LayerId id : front) {
      NodeCandidates nc;
      nc.node = id;
      nc.accs = candidates_for(sim, id, options);
      nc.durations.reserve(nc.accs.size());
      for (const AccId a : nc.accs)
        nc.durations.push_back(sim.unlocalized_duration(id, a));
      for (const LayerId p : model.graph().preds(id))
        nc.ready = std::max(nc.ready, finish[p.value]);
      nodes.push_back(std::move(nc));
    }

    // Split into chunks whose assignment product stays enumerable.
    std::size_t begin = 0;
    while (begin < nodes.size()) {
      std::size_t end = begin;
      std::uint64_t product = 1;
      while (end < nodes.size()) {
        const std::uint64_t next = product * nodes[end].accs.size();
        if (end > begin && next > options.max_candidates) break;
        product = next;
        ++end;
      }
      const std::size_t k = end - begin;

      // Enumerate assignments in mixed radix; track the best by
      // (makespan delta, sum of finishes, lexicographic choice index).
      std::vector<std::size_t> choice(k, 0);
      std::vector<std::size_t> best_choice;
      double best_mk = std::numeric_limits<double>::infinity();
      double best_sum = std::numeric_limits<double>::infinity();
      std::vector<double> tails(sys.accelerator_count());
      while (true) {
        std::copy(acc_tail.begin(), acc_tail.end(), tails.begin());
        double mk = makespan;
        double sum = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
          const NodeCandidates& nc = nodes[begin + i];
          const AccId a = nc.accs[choice[i]];
          const double start = std::max(nc.ready, tails[a.value]);
          const double fin = start + nc.durations[choice[i]];
          tails[a.value] = fin;
          mk = std::max(mk, fin);
          sum += fin;
        }
        if (mk < best_mk || (mk == best_mk && sum < best_sum)) {
          best_mk = mk;
          best_sum = sum;
          best_choice = choice;
        }
        // Next assignment (mixed radix increment).
        std::size_t d = 0;
        while (d < k) {
          if (++choice[d] < nodes[begin + d].accs.size()) break;
          choice[d] = 0;
          ++d;
        }
        if (d == k) break;
      }

      // Commit the chunk in frontier order.
      H2H_ASSERT(best_choice.size() == k);
      for (std::size_t i = 0; i < k; ++i) {
        const NodeCandidates& nc = nodes[begin + i];
        const AccId a = nc.accs[best_choice[i]];
        mapping.assign(nc.node, a);
        const double start = std::max(nc.ready, acc_tail[a.value]);
        const double fin = start + nc.durations[best_choice[i]];
        acc_tail[a.value] = fin;
        finish[nc.node.value] = fin;
        makespan = std::max(makespan, fin);
        done[nc.node.value] = true;
      }
      begin = end;
    }
  }

  H2H_ENSURES(mapping.complete());
  return mapping;
}

}  // namespace h2h
