// §2 motivation experiment: H2H vs the two prior-art strategies —
// computation-prioritized mapping (the paper's baseline, = H2H steps 1-2)
// and communication-prioritized task clustering (Taura-style). Shows that
// clustering hurts compute efficiency while H2H balances both, at the
// bandwidth extremes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void compare_at(BandwidthSetting bw, std::ostream& out) {
  out << "=== BW_acc " << to_string(bw) << " ===\n";
  TextTable table({"model", "comp-prio (s)", "cluster (s)", "H2H (s)",
                   "H2H vs comp", "H2H vs cluster"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig sys = SystemConfig::standard(bw);
    const double comp =
        run_computation_prioritized_baseline(model, sys).final_result().latency;
    const double cluster =
        run_cluster_prioritized_baseline(model, sys).final_result().latency;
    const double ours = plan_once(model, sys).final_result().latency;
    table.add_row({std::string(info.key), strformat("%.6f", comp),
                   strformat("%.6f", cluster), strformat("%.6f", ours),
                   format_percent(1.0 - ours / comp, 1),
                   format_percent(1.0 - ours / cluster, 1)});
  }
  table.print(out);
  out << '\n';
}

void BM_ClusterBaseline_CasiaSurf(benchmark::State& state) {
  const ModelGraph model = make_casia_surf();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  for (auto _ : state) {
    const PlanResponse r = run_cluster_prioritized_baseline(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_ClusterBaseline_CasiaSurf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  compare_at(BandwidthSetting::LowMinus, std::cout);
  compare_at(BandwidthSetting::High, std::cout);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
