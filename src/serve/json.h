// Minimal strict JSON for the serve wire protocol (DESIGN.md §8). No
// third-party dependency: the container ships nothing, so the protocol
// carries its own codec.
//
// Determinism is the design center — the serve smoke tests diff responses
// byte-for-byte against pinned fixtures and against `h2h map --json`:
//  - Objects preserve insertion order (no sorting, no hashing), so a
//    document serializes the way it was built.
//  - Numbers serialize via std::to_chars shortest round-trip form; for any
//    document this codec produced, serialize -> parse -> re-serialize is
//    byte-stable (property-tested in test_serve_json.cpp).
//  - dump() emits no insignificant whitespace.
//
// The parser is strict JSON (RFC 8259): no comments, no trailing commas, no
// NaN/Infinity literals. Numbers land in doubles (integers beyond 2^53
// round — the wire schema has none). Nesting depth is capped so hostile
// input cannot exhaust the stack.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/contracts.h"

namespace h2h::json {

class Value;
using Array = std::vector<Value>;

/// An insertion-ordered string -> Value map. Lookup is a linear scan: wire
/// objects have a handful of members.
class Object {
 public:
  struct Member;

  [[nodiscard]] std::span<const Member> members() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;
  /// The member's value, or nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  /// Append (or overwrite) a member, keeping first-insertion order.
  void set(std::string key, Value value);

 private:
  std::vector<Member> members_;
};

class Value {
 public:
  Value() noexcept : v_(nullptr) {}
  Value(std::nullptr_t) noexcept : v_(nullptr) {}
  Value(bool b) noexcept : v_(b) {}
  Value(double d) noexcept : v_(d) {}
  Value(int i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned i) noexcept : v_(static_cast<double>(i)) {}
  Value(std::string s) noexcept : v_(std::move(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) noexcept : v_(std::move(a)) {}
  Value(Object o) noexcept : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const {
    H2H_EXPECTS(is_bool());
    return std::get<bool>(v_);
  }
  [[nodiscard]] double as_number() const {
    H2H_EXPECTS(is_number());
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    H2H_EXPECTS(is_string());
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const {
    H2H_EXPECTS(is_array());
    return std::get<Array>(v_);
  }
  [[nodiscard]] const Object& as_object() const {
    H2H_EXPECTS(is_object());
    return std::get<Object>(v_);
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

struct Object::Member {
  std::string key;
  Value value;
};

/// Serialize with the deterministic formatting documented above.
[[nodiscard]] std::string dump(const Value& value);

struct ParseResult {
  std::optional<Value> value;  // set on success
  std::string error;           // set on failure
  std::size_t offset = 0;      // byte offset of the failure
};

/// Strict parse of exactly one JSON document (trailing garbage is an
/// error). `max_depth` caps array/object nesting.
[[nodiscard]] ParseResult parse(std::string_view text,
                                std::size_t max_depth = 64);

}  // namespace h2h::json
