// Shared experiment runner: executes the H2H pipeline for a zoo model under
// a bandwidth setting and collects exactly the series the paper's evaluation
// reports (per-step latency/energy, comm/comp ratios, search time). Used by
// every bench binary and by EXPERIMENTS.md.
//
// The Planner-taking overloads share one session cache across cells, so
// repeated grids (CLI `sweep`, the report benches, EXPERIMENTS.md reruns)
// pay the Simulator/CostTable build once per (model, bandwidth) and re-plan
// warm afterwards. The Planner-less overloads are one-shot conveniences.
#pragma once

#include <optional>
#include <vector>

#include "core/baselines.h"
#include "core/planner.h"
#include "model/zoo.h"

namespace h2h {

struct StepSeries {
  ZooModel model = ZooModel::MoCap;
  BandwidthSetting bw = BandwidthSetting::Mid;
  std::vector<double> latency;  // seconds, one entry per pipeline step
  std::vector<double> energy;   // joules, aligned with `latency`
  double baseline_comp_ratio = 0;  // after step 2 (Fig. 5a "Baseline")
  double h2h_comp_ratio = 0;       // after step 4 (Fig. 5a "H2H")
  double search_seconds = 0;       // Fig. 5b
  RemapStats remap;                // includes stopped_on_budget (Fig. 5b)

  /// Step-4 latency as a fraction of step-2 (Table 4 column-4 semantics).
  [[nodiscard]] double latency_vs_baseline() const {
    H2H_EXPECTS(latency.size() >= 2);
    return latency.back() / latency[1];
  }
  [[nodiscard]] double energy_vs_baseline() const {
    H2H_EXPECTS(energy.size() >= 2);
    return energy.back() / energy[1];
  }
};

/// Run the full H2H pipeline for one (model, bandwidth) cell through the
/// caller's session cache. `time_budget_s` bounds each cell's search.
[[nodiscard]] StepSeries run_experiment(
    Planner& planner, ZooModel model, BandwidthSetting bw,
    const PlanOptions& options = {},
    std::optional<double> time_budget_s = std::nullopt);

/// One-shot convenience (cold every call; prefer the Planner overload).
[[nodiscard]] StepSeries run_experiment(ZooModel model, BandwidthSetting bw,
                                        const PlanOptions& options = {});

/// As run_experiment but on a caller-provided model/system (ablations).
[[nodiscard]] StepSeries run_experiment_on(const ModelGraph& model,
                                           const SystemConfig& sys,
                                           const PlanOptions& options = {});

/// The paper's full sweep: 6 models x 5 bandwidth settings, paper order,
/// through the caller's session cache.
[[nodiscard]] std::vector<StepSeries> run_full_sweep(
    Planner& planner, const PlanOptions& options = {},
    std::optional<double> time_budget_s = std::nullopt);

/// One-shot convenience: runs the sweep on a private Planner.
[[nodiscard]] std::vector<StepSeries> run_full_sweep(
    const PlanOptions& options = {});

}  // namespace h2h
