// §4.5 extension — dynamic modality change.
//
// Multi-sensor systems toggle modalities at runtime (the paper's example: a
// health monitor enabling/disabling motion sensors several times a second).
// Re-running H2H from scratch would re-load every weight; the extension
// re-uses the previous round's buffered weights:
//  1. step 1 prioritizes mapping a layer onto the accelerator that already
//     holds its weights (preference hook), and
//  2. the knapsack is modified so that resident weights are pinned first
//     ("part of the weight allocation is determined").
//
// Both hooks are plain pass options, so a round is just a pipeline
// configuration (mapping_pass.h) run through a Planner: the per-variant
// Simulator/CostTable state is cached in the session cache, and revisited
// modality sets re-plan warm — no cost-table rebuild, no virtual
// AcceleratorModel calls (the Fig. 5b repeated-replanning scenario).
//
// Model variants are derived with subset_model(): inactive branches are
// removed, kept layers keep their shapes (dropped inputs are semantically
// zero-filled), so layer names/weights stay identical across rounds and
// weight residency can be tracked by name.
#pragma once

#include <map>
#include <span>
#include <string>

#include "core/planner.h"

namespace h2h {

/// Sub-model induced by the active modality set (shared tag 0 is always
/// active). Structural layers left without any live producer are dropped
/// transitively. The result intentionally skips full shape validation:
/// a Concat may legitimately keep a single live input.
[[nodiscard]] ModelGraph subset_model(const ModelGraph& full,
                                      std::span<const std::uint32_t> active);

struct DynamicRemapResult {
  PlanResponse h2h;
  Bytes weights_reused = 0;  // pinned bytes already resident on that accelerator
  Bytes weights_loaded = 0;  // pinned bytes that must be (re)loaded
  /// Fraction of pinned weight bytes served from residency.
  [[nodiscard]] double reuse_ratio() const noexcept {
    const Bytes total = weights_reused + weights_loaded;
    return total == 0 ? 0.0
                      : static_cast<double>(weights_reused) /
                            static_cast<double>(total);
  }
};

class DynamicModalityMapper {
 public:
  explicit DynamicModalityMapper(const SystemConfig& sys,
                                 PlanOptions options = {});

  /// Map a model variant, preferring residency from earlier rounds, and
  /// update residency to the new pinned set. Revisited variants are served
  /// from the planner's session cache (h2h.warm is set on the result).
  [[nodiscard]] DynamicRemapResult remap(const ModelGraph& variant);

  /// Forget all resident weights (cold start). The session cache is kept:
  /// residency is a solution property, not cost state.
  void reset_residency() noexcept { resident_.clear(); }

  [[nodiscard]] std::size_t resident_layer_count() const noexcept {
    return resident_.size();
  }

  /// The session cache backing the rounds (hit/miss introspection).
  [[nodiscard]] const Planner& planner() const noexcept { return planner_; }

 private:
  PlanOptions options_;
  Planner planner_;
  std::map<std::string, AccId, std::less<>> resident_;  // layer name -> acc
};

}  // namespace h2h
