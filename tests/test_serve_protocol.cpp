// The serve wire protocol (serve/protocol.h): schema validation, versioned
// error responses, and the response serialization contract.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "accel/capability.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "test_helpers.h"

namespace h2h {
namespace {

using serve::ErrorCode;
using serve::WireError;
using serve::WireRequest;

[[nodiscard]] WireRequest parse_ok(const std::string& line) {
  auto parsed = serve::parse_request(line);
  EXPECT_TRUE(std::holds_alternative<WireRequest>(parsed)) << line;
  if (const WireError* err = std::get_if<WireError>(&parsed)) {
    ADD_FAILURE() << serve::to_string(err->code) << ": " << err->message;
    return {};
  }
  return std::get<WireRequest>(std::move(parsed));
}

[[nodiscard]] WireError parse_err(const std::string& line) {
  auto parsed = serve::parse_request(line);
  EXPECT_TRUE(std::holds_alternative<WireError>(parsed)) << line;
  if (std::holds_alternative<WireRequest>(parsed)) return {};
  return std::get<WireError>(std::move(parsed));
}

TEST(ServeProtocol, ParsesMinimalRequestWithDefaults) {
  const WireRequest req =
      parse_ok(R"({"schema_version":1,"model":"mocap"})");
  EXPECT_EQ(req.model, ZooModel::MoCap);
  EXPECT_TRUE(req.id.empty());
  EXPECT_DOUBLE_EQ(req.bw_gbps, 0.5);
  EXPECT_EQ(req.batch, 0u);
  EXPECT_TRUE(req.options.run_remapping);
  EXPECT_TRUE(req.emit_mapping);
  EXPECT_TRUE(req.emit_steps);
  EXPECT_TRUE(req.emit_timing);
}

TEST(ServeProtocol, ParsesFullRequest) {
  const WireRequest req = parse_ok(
      R"({"schema_version":1,"id":"r-7","model":"vlocnet","bw_gbps":0.125,)"
      R"("batch":4,"options":{"remap":false,"knapsack":"greedy",)"
      R"("objective":"edp","time_budget_s":0.25},)"
      R"("emit":{"mapping":false,"timing":false}})");
  EXPECT_EQ(req.id, "r-7");
  EXPECT_EQ(req.model, ZooModel::VLocNet);
  EXPECT_DOUBLE_EQ(req.bw_gbps, 0.125);
  EXPECT_EQ(req.batch, 4u);
  EXPECT_FALSE(req.options.run_remapping);
  EXPECT_EQ(req.options.weight.algo, KnapsackAlgo::GreedyDensity);
  EXPECT_EQ(req.options.remap.objective,
            RemapObjective::EnergyDelayProduct);
  ASSERT_TRUE(req.options.time_budget_s.has_value());
  EXPECT_DOUBLE_EQ(*req.options.time_budget_s, 0.25);
  EXPECT_FALSE(req.emit_mapping);
  EXPECT_TRUE(req.emit_steps);
  EXPECT_FALSE(req.emit_timing);
}

TEST(ServeProtocol, RejectsMalformedJson) {
  EXPECT_EQ(parse_err("not json").code, ErrorCode::ParseError);
  EXPECT_EQ(parse_err("[1,2,3]").code, ErrorCode::ParseError);
  EXPECT_EQ(parse_err("").code, ErrorCode::ParseError);
}

TEST(ServeProtocol, RejectsMissingOrWrongSchemaVersion) {
  EXPECT_EQ(parse_err(R"({"model":"mocap"})").code,
            ErrorCode::SchemaVersion);
  EXPECT_EQ(parse_err(R"({"schema_version":2,"model":"mocap"})").code,
            ErrorCode::SchemaVersion);
  EXPECT_EQ(parse_err(R"({"schema_version":"1","model":"mocap"})").code,
            ErrorCode::SchemaVersion);
}

TEST(ServeProtocol, RejectsUnknownFieldsEverywhere) {
  const WireError top =
      parse_err(R"({"schema_version":1,"model":"mocap","modle":"x"})");
  EXPECT_EQ(top.code, ErrorCode::UnknownField);
  EXPECT_NE(top.message.find("modle"), std::string::npos);

  const WireError opt = parse_err(
      R"({"schema_version":1,"model":"mocap","options":{"remapp":true}})");
  EXPECT_EQ(opt.code, ErrorCode::UnknownField);

  // The CLI kebab-case spelling is not the wire spelling.
  const WireError cli_spelling = parse_err(
      R"({"schema_version":1,"model":"mocap",)"
      R"("options":{"time-budget":1}})");
  EXPECT_EQ(cli_spelling.code, ErrorCode::UnknownField);

  const WireError emit = parse_err(
      R"({"schema_version":1,"model":"mocap","emit":{"gantt":true}})");
  EXPECT_EQ(emit.code, ErrorCode::UnknownField);
}

TEST(ServeProtocol, RejectsBadFieldValuesAndEchoesId) {
  const WireError bw = parse_err(
      R"({"schema_version":1,"id":"q","model":"mocap","bw_gbps":-1})");
  EXPECT_EQ(bw.code, ErrorCode::BadField);
  EXPECT_EQ(bw.id, "q");

  EXPECT_EQ(parse_err(
                R"({"schema_version":1,"model":"mocap","batch":1.5})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(
                R"({"schema_version":1,"model":"mocap","batch":0})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("options":{"remap":"yes"}})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("options":{"time_budget_s":-2}})")
                .code,
            ErrorCode::BadField);
}

TEST(ServeProtocol, RejectsUnknownModelListingKnownKeys) {
  const WireError err =
      parse_err(R"({"schema_version":1,"model":"resnet"})");
  EXPECT_EQ(err.code, ErrorCode::UnknownModel);
  EXPECT_NE(err.message.find("mocap"), std::string::npos);
  EXPECT_NE(err.message.find("vlocnet"), std::string::npos);
}

TEST(ServeProtocol, ErrorResponsesAreVersionedJson) {
  const std::string line = serve::write_error(
      {ErrorCode::UnknownField, "bogus: unknown field", "r1"});
  json::ParseResult parsed = json::parse(line);
  ASSERT_TRUE(parsed.value.has_value()) << line;
  const json::Object& obj = parsed.value->as_object();
  EXPECT_DOUBLE_EQ(obj.find("schema_version")->as_number(), 1.0);
  EXPECT_EQ(obj.find("id")->as_string(), "r1");
  EXPECT_FALSE(obj.find("ok")->as_bool());
  const json::Object& error = obj.find("error")->as_object();
  EXPECT_EQ(error.find("code")->as_string(), "unknown_field");
  EXPECT_EQ(error.find("message")->as_string(), "bogus: unknown field");
}

TEST(ServeProtocol, ResponseRoundTripsThroughTheCodec) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse plan = plan_once(model, sys);

  WireRequest req;
  req.id = "resp-1";
  req.model = ZooModel::MoCap;  // names come from `model`, key is echoed
  req.bw_gbps = 1.0;
  const std::string line = serve::write_response(req, plan, model, sys);

  json::ParseResult parsed = json::parse(line);
  ASSERT_TRUE(parsed.value.has_value()) << line;
  const json::Object& obj = parsed.value->as_object();
  EXPECT_DOUBLE_EQ(obj.find("schema_version")->as_number(), 1.0);
  EXPECT_EQ(obj.find("id")->as_string(), "resp-1");
  EXPECT_TRUE(obj.find("ok")->as_bool());
  EXPECT_EQ(obj.find("model")->as_string(), "mocap");
  EXPECT_EQ(obj.find("batch")->as_number(), 1.0);
  EXPECT_GT(obj.find("latency_s")->as_number(), 0.0);
  EXPECT_GT(obj.find("energy_j")->as_number(), 0.0);

  // Defaults are echoed at canonical values.
  const json::Object& options = obj.find("options")->as_object();
  EXPECT_TRUE(options.find("remap")->as_bool());
  EXPECT_EQ(options.find("knapsack")->as_string(), "exact");
  EXPECT_EQ(options.find("time_budget_s"), nullptr);  // unset -> omitted

  // Four default pipeline steps, mapping covers every non-input layer.
  EXPECT_EQ(obj.find("steps")->as_array().size(), plan.steps.size());
  const json::Object& mapping = obj.find("mapping")->as_object();
  std::size_t non_input = 0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind != LayerKind::Input) ++non_input;
  }
  EXPECT_EQ(mapping.find("layers")->as_array().size(), non_input);

  // Timing present by default, absent when not requested.
  EXPECT_NE(obj.find("timing"), nullptr);
  req.emit_timing = false;
  const std::string quiet = serve::write_response(req, plan, model, sys);
  json::ParseResult quiet_parsed = json::parse(quiet);
  ASSERT_TRUE(quiet_parsed.value.has_value());
  EXPECT_EQ(quiet_parsed.value->as_object().find("timing"), nullptr);

  // And the line itself re-serializes byte-stably.
  EXPECT_EQ(json::dump(*parsed.value), line);
}

TEST(ServeProtocolLinks, ParsesAllThreeShapes) {
  const WireRequest u = parse_ok(
      R"({"schema_version":1,"model":"mocap",)"
      R"("links":{"shape":"uniform","bw_gbps":0.25}})");
  ASSERT_TRUE(u.links.has_value());
  EXPECT_EQ(u.links->shape(), LinkShape::Uniform);
  EXPECT_DOUBLE_EQ(u.bw_gbps, 0.25);  // follows the topology's base

  const WireRequest m = parse_ok(
      R"({"schema_version":1,"model":"mocap",)"
      R"("links":{"shape":"mixed","bw_gbps":0.125,)"
      R"("overrides":[{"acc":2,"bw_gbps":1.25},{"acc":0,"bw_gbps":1.25}]}})");
  ASSERT_TRUE(m.links.has_value());
  EXPECT_EQ(m.links->shape(), LinkShape::Mixed);
  ASSERT_EQ(m.links->overrides().size(), 2u);
  EXPECT_EQ(m.links->overrides()[0].first, 0u);  // canonicalized order

  const WireRequest h = parse_ok(
      R"({"schema_version":1,"model":"mocap",)"
      R"("links":{"shape":"hierarchical","group_size":4,"intra_gbps":1.25,)"
      R"("uplink_gbps":0.25,"host_gbps":0.5,"hop_latency_us":2}})");
  ASSERT_TRUE(h.links.has_value());
  EXPECT_EQ(h.links->shape(), LinkShape::Hierarchical);
  EXPECT_EQ(h.links->hier().group_size, 4u);
  EXPECT_DOUBLE_EQ(h.links->hier().hop_latency_s, 2e-6);
  EXPECT_DOUBLE_EQ(h.bw_gbps, 0.5);
}

TEST(ServeProtocolLinks, RejectsConflictsAndBadShapes) {
  // links and bw_gbps are mutually exclusive.
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap","bw_gbps":0.5,)"
                      R"("links":{"shape":"uniform","bw_gbps":0.5}})")
                .code,
            ErrorCode::BadField);
  // Unknown fields inside links fail loudly.
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"uniform","bw_gbps":0.5,)"
                      R"("latency":1}})")
                .code,
            ErrorCode::UnknownField);
  // Fields of another shape are unknown for this one.
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"uniform","bw_gbps":0.5,)"
                      R"("group_size":4}})")
                .code,
            ErrorCode::UnknownField);
  // Bad values inside a known shape.
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"uniform","bw_gbps":0}})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"ring","bw_gbps":0.5}})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"mixed","bw_gbps":0.5,)"
                      R"("overrides":[{"acc":-1,"bw_gbps":1}]}})")
                .code,
            ErrorCode::BadField);
  EXPECT_EQ(parse_err(R"({"schema_version":1,"model":"mocap",)"
                      R"("links":{"shape":"hierarchical","group_size":4,)"
                      R"("intra_gbps":1.25}})")
                .code,
            ErrorCode::BadField);  // uplink missing
}

TEST(ServeProtocolLinks, ResponseEchoesCanonicalTopology) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse plan = plan_once(model, sys);

  const WireRequest req = parse_ok(
      R"({"schema_version":1,"id":"lk-1","model":"mocap",)"
      R"("links":{"shape":"mixed","bw_gbps":0.125,)"
      R"("overrides":[{"acc":2,"bw_gbps":1.25}]}})");
  const std::string line = serve::write_response(req, plan, model, sys);
  json::ParseResult parsed = json::parse(line);
  ASSERT_TRUE(parsed.value.has_value()) << line;
  const json::Object& obj = parsed.value->as_object();
  const json::Value* links = obj.find("links");
  ASSERT_NE(links, nullptr);
  EXPECT_EQ(links->as_object().find("shape")->as_string(), "mixed");
  EXPECT_DOUBLE_EQ(links->as_object().find("bw_gbps")->as_number(), 0.125);
  const json::Array& ov = links->as_object().find("overrides")->as_array();
  ASSERT_EQ(ov.size(), 1u);
  EXPECT_DOUBLE_EQ(ov[0].as_object().find("acc")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(ov[0].as_object().find("bw_gbps")->as_number(), 1.25);

  // A scalar request's response carries no links object — the pre-topology
  // byte layout is pinned by the serve fixtures.
  WireRequest scalar;
  scalar.model = ZooModel::MoCap;
  const std::string plain = serve::write_response(scalar, plan, model, sys);
  json::ParseResult plain_parsed = json::parse(plain);
  ASSERT_TRUE(plain_parsed.value.has_value());
  EXPECT_EQ(plain_parsed.value->as_object().find("links"), nullptr);
}

TEST(ServeProtocolLinks, ToPlanRequestCarriesTheTopology) {
  const WireRequest req = parse_ok(
      R"({"schema_version":1,"model":"casia-surf",)"
      R"("links":{"shape":"hierarchical","group_size":4,"intra_gbps":1.25,)"
      R"("uplink_gbps":0.25}})");
  const PlanRequest plan = serve::to_plan_request(req);
  ASSERT_TRUE(plan.links.has_value());
  EXPECT_EQ(plan.links->shape(), LinkShape::Hierarchical);
  EXPECT_DOUBLE_EQ(plan.bw_acc, plan.links->base_bw());
}

using serve::WireTenantsRequest;

[[nodiscard]] WireTenantsRequest tenants_ok(const std::string& line) {
  auto parsed = serve::parse_any_request(line);
  EXPECT_TRUE(std::holds_alternative<WireTenantsRequest>(parsed)) << line;
  if (const WireError* err = std::get_if<WireError>(&parsed)) {
    ADD_FAILURE() << serve::to_string(err->code) << ": " << err->message;
    return {};
  }
  if (!std::holds_alternative<WireTenantsRequest>(parsed)) return {};
  return std::get<WireTenantsRequest>(std::move(parsed));
}

[[nodiscard]] WireError tenants_err(const std::string& line) {
  auto parsed = serve::parse_any_request(line);
  EXPECT_TRUE(std::holds_alternative<WireError>(parsed)) << line;
  if (const WireError* err = std::get_if<WireError>(&parsed)) {
    return *err;
  }
  return {};
}

TEST(ServeProtocolTenants, NewErrorCodesHaveWireNames) {
  EXPECT_EQ(serve::to_string(ErrorCode::InfeasibleCapability),
            "infeasible_capability");
  EXPECT_EQ(serve::to_string(ErrorCode::SloViolated), "slo_violated");
}

TEST(ServeProtocolTenants, DispatchesOnTheTenantsField) {
  // A single-model line still parses to a WireRequest through the
  // dispatcher, and parse_request itself never sees the tenants schema.
  auto single = serve::parse_any_request(
      R"({"schema_version":1,"model":"mocap"})");
  EXPECT_TRUE(std::holds_alternative<WireRequest>(single));
  // parse_request (single-model only) fails a tenants line on its missing
  // required "model" field, exactly as before the tenants schema existed.
  EXPECT_EQ(parse_err(R"({"schema_version":1,)"
                      R"("tenants":[{"name":"a","model":"mocap"}]})")
                .code,
            ErrorCode::BadField);
}

TEST(ServeProtocolTenants, ParsesMinimalAndFullRequests) {
  const WireTenantsRequest minimal = tenants_ok(
      R"({"schema_version":1,"tenants":[{"name":"a","model":"mocap"}]})");
  ASSERT_EQ(minimal.tenants.size(), 1u);
  EXPECT_EQ(minimal.tenants[0].name, "a");
  EXPECT_EQ(minimal.tenants[0].model, ZooModel::MoCap);
  EXPECT_FALSE(minimal.tenants[0].has_slo());
  EXPECT_EQ(minimal.tenants[0].priority, 1u);
  EXPECT_EQ(minimal.tenants[0].required_caps, 0u);
  EXPECT_DOUBLE_EQ(minimal.bw_gbps, 0.5);
  EXPECT_EQ(minimal.max_rounds, 3u);
  EXPECT_TRUE(minimal.steal_round);
  EXPECT_FALSE(minimal.require_slos);
  EXPECT_TRUE(minimal.emit_mapping);

  const WireTenantsRequest full = tenants_ok(
      R"({"schema_version":1,"id":"t-1",)"
      R"("tenants":[{"name":"cam","model":"casia-surf","slo_s":0.012,)"
      R"("priority":3,"caps":"conv+bigmem"},)"
      R"({"name":"emo","model":"mocap"}],)"
      R"("bw_gbps":0.125,"options":{"remap":false},"max_rounds":1,)"
      R"("steal_round":false,"require_slos":true,)"
      R"("emit":{"mapping":false}})");
  EXPECT_EQ(full.id, "t-1");
  ASSERT_EQ(full.tenants.size(), 2u);
  EXPECT_DOUBLE_EQ(full.tenants[0].slo_s, 0.012);
  EXPECT_EQ(full.tenants[0].priority, 3u);
  EXPECT_EQ(full.tenants[0].required_caps, kCapConv | kCapBigMem);
  EXPECT_DOUBLE_EQ(full.bw_gbps, 0.125);
  EXPECT_FALSE(full.options.run_remapping);
  EXPECT_EQ(full.max_rounds, 1u);
  EXPECT_FALSE(full.steal_round);
  EXPECT_TRUE(full.require_slos);
  EXPECT_FALSE(full.emit_mapping);
}

TEST(ServeProtocolTenants, RejectsBadAndUnknownFields) {
  const auto code = [](const std::string& line) {
    return tenants_err(line).code;
  };
  // tenants itself.
  EXPECT_EQ(code(R"({"schema_version":1,"tenants":[]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,"tenants":"a=mocap"})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,"tenants":[42]})"),
            ErrorCode::BadField);
  // Per-tenant fields: strict names, models, values; no typos.
  EXPECT_EQ(code(R"({"schema_version":1,"tenants":[{"model":"mocap"}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a/b","model":"mocap"}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"},)"
                 R"({"name":"a","model":"vfs"}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,"tenants":[{"name":"a"}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"resnet"}]})"),
            ErrorCode::UnknownModel);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap","slo_s":0}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap",)"
                 R"("priority":0}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap",)"
                 R"("caps":"warp"}]})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap",)"
                 R"("slo":0.01}]})"),
            ErrorCode::UnknownField);
  // Root-level knobs.
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"}],)"
                 R"("max_rounds":-1})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"}],)"
                 R"("steal_round":1})"),
            ErrorCode::BadField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"}],)"
                 R"("batch":2})"),
            ErrorCode::UnknownField);  // single-model-only field
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"}],)"
                 R"("links":{"shape":"uniform","bw_gbps":1}})"),
            ErrorCode::UnknownField);
  EXPECT_EQ(code(R"({"schema_version":1,)"
                 R"("tenants":[{"name":"a","model":"mocap"}],)"
                 R"("emit":{"steps":true}})"),
            ErrorCode::UnknownField);
  // The id still echoes on errors.
  const WireError err = tenants_err(
      R"({"schema_version":1,"id":"e-1","tenants":[]})");
  EXPECT_EQ(err.id, "e-1");
}

TEST(ServeProtocolTenants, ResponseEchoesCanonicalTenantsAndVerdicts) {
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  CoMapper comapper(sys);
  WireTenantsRequest req = tenants_ok(
      R"({"schema_version":1,"id":"resp-t",)"
      R"("tenants":[{"name":"solo","model":"mocap","slo_s":0.5,)"
      R"("caps":"lstm"},{"name":"free","model":"vfs"}],)"
      R"("options":{"remap":false},"max_rounds":1,"steal_round":false})");
  const TenantSet set(req.tenants);
  CoMapOptions opts;
  opts.plan = req.options;
  opts.max_rounds = req.max_rounds;
  opts.steal_round = req.steal_round;
  const CoMapResult result = comapper.co_map(set, opts);

  const std::string line =
      serve::write_tenants_response(req, result, sys);
  json::ParseResult parsed = json::parse(line);
  ASSERT_TRUE(parsed.value.has_value()) << line;
  const json::Object& obj = parsed.value->as_object();
  EXPECT_DOUBLE_EQ(obj.find("schema_version")->as_number(), 1.0);
  EXPECT_EQ(obj.find("id")->as_string(), "resp-t");
  EXPECT_TRUE(obj.find("ok")->as_bool());

  const json::Array& tenants = obj.find("tenants")->as_array();
  ASSERT_EQ(tenants.size(), 2u);
  const json::Object& first = tenants[0].as_object();
  EXPECT_EQ(first.find("name")->as_string(), "solo");
  EXPECT_EQ(first.find("model")->as_string(), "mocap");
  EXPECT_DOUBLE_EQ(first.find("slo_s")->as_number(), 0.5);
  EXPECT_EQ(first.find("caps")->as_string(), "lstm");
  EXPECT_GT(first.find("latency_s")->as_number(), 0.0);
  EXPECT_TRUE(first.find("met")->as_bool());
  // No SLO, no caps -> both omitted rather than spelled as infinities.
  const json::Object& second = tenants[1].as_object();
  EXPECT_EQ(second.find("slo_s"), nullptr);
  EXPECT_EQ(second.find("slack_s"), nullptr);
  EXPECT_EQ(second.find("caps"), nullptr);

  EXPECT_GT(obj.find("makespan_s")->as_number(), 0.0);
  EXPECT_TRUE(obj.find("all_slos_met")->as_bool());
  EXPECT_EQ(obj.find("timing"), nullptr);  // never emitted for tenants
  // Union-model mapping covers every placeable layer of both tenants.
  const json::Object& mapping = obj.find("mapping")->as_object();
  std::size_t non_input = 0;
  for (const LayerId id : result.model.all_layers()) {
    if (result.model.layer(id).kind != LayerKind::Input) ++non_input;
  }
  EXPECT_EQ(mapping.find("layers")->as_array().size(), non_input);
  // And the line re-serializes byte-stably.
  EXPECT_EQ(json::dump(*parsed.value), line);

  // emit.mapping=false drops the mapping block.
  req.emit_mapping = false;
  const std::string quiet =
      serve::write_tenants_response(req, result, sys);
  json::ParseResult quiet_parsed = json::parse(quiet);
  ASSERT_TRUE(quiet_parsed.value.has_value());
  EXPECT_EQ(quiet_parsed.value->as_object().find("mapping"), nullptr);
}

}  // namespace
}  // namespace h2h
