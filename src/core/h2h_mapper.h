// The H2H mapping pipeline (paper Algorithm 1): the library's primary entry
// point. Runs the four steps in order and records a schedule snapshot after
// each, so callers (benches, EXPERIMENTS.md) can reproduce the per-step
// series of Fig. 4 / Table 4. The paper's comparison baseline is the
// pipeline after step 2 (computation-prioritized mapping + weight locality).
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/comp_prioritized.h"
#include "core/remapping.h"

namespace h2h {

struct H2HOptions {
  CompPrioritizedOptions step1;
  WeightLocalityOptions weight;
  FusionOptions fusion;
  RemapOptions remap;
  /// Disable step 4 (used to study the post-optimizations alone).
  bool run_remapping = true;
};

struct StepSnapshot {
  std::string name;        // "1: computation-prioritized", ...
  ScheduleResult result;   // full schedule + energy after this step
};

struct H2HResult {
  Mapping mapping;
  LocalityPlan plan;
  std::vector<StepSnapshot> steps;  // one per executed step, in order
  RemapStats remap_stats;
  double search_seconds = 0;  // wall-clock of the whole pipeline (Fig. 5b)

  [[nodiscard]] const ScheduleResult& final_result() const {
    return steps.back().result;
  }
  /// The paper's baseline: after step 2.
  [[nodiscard]] const ScheduleResult& baseline_result() const {
    H2H_EXPECTS(steps.size() >= 2);
    return steps[1].result;
  }
  /// final latency / baseline latency (Table 4 column 4 semantics).
  [[nodiscard]] double latency_vs_baseline() const {
    return final_result().latency / baseline_result().latency;
  }
  [[nodiscard]] double energy_vs_baseline() const {
    return final_result().energy.total() / baseline_result().energy.total();
  }
};

class H2HMapper {
 public:
  H2HMapper(const ModelGraph& model, const SystemConfig& sys,
            H2HOptions options = {});

  /// Execute the pipeline. Deterministic: same inputs, same result.
  [[nodiscard]] H2HResult run() const;

  [[nodiscard]] const Simulator& simulator() const noexcept { return sim_; }

 private:
  Simulator sim_;
  H2HOptions options_;
};

}  // namespace h2h
