#include "core/plan_options.h"

#include <array>
#include <charconv>
#include <cmath>

#include "util/contracts.h"
#include "util/str.h"

namespace h2h {
namespace {

using SetResult = std::optional<std::string>;

[[nodiscard]] SetResult parse_bool(std::string_view value, bool& out) {
  if (value == "true") {
    out = true;
    return std::nullopt;
  }
  if (value == "false") {
    out = false;
    return std::nullopt;
  }
  return strformat("expected 'true' or 'false', got '%.*s'",
                   static_cast<int>(value.size()), value.data());
}

[[nodiscard]] std::string bool_value(bool v) { return v ? "true" : "false"; }

/// Canonical double spelling: shortest round-trip form (std::to_chars), so
/// serialize -> parse -> re-serialize is byte-stable.
[[nodiscard]] std::string double_value(double v) {
  std::array<char, 32> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), v);
  H2H_ASSERT(ec == std::errc());
  return std::string(buf.data(), end);
}

const std::array<PlanOptionSpec, 6> kSpecs = {{
    {"remap", "remap", PlanOptionSpec::Kind::Bool, "",
     "run step 4, locality-aware remapping",
     [](PlanOptions& o, std::string_view v) {
       return parse_bool(v, o.run_remapping);
     },
     [](const PlanOptions& o) { return bool_value(o.run_remapping); }},
    {"weight-locality", "weight_locality", PlanOptionSpec::Kind::Bool, "",
     "run step 2, the weight-locality knapsack",
     [](PlanOptions& o, std::string_view v) {
       return parse_bool(v, o.run_weight_locality);
     },
     [](const PlanOptions& o) { return bool_value(o.run_weight_locality); }},
    {"fusion", "fusion", PlanOptionSpec::Kind::Bool, "",
     "run step 3, activation-transfer fusion",
     [](PlanOptions& o, std::string_view v) {
       return parse_bool(v, o.run_fusion);
     },
     [](const PlanOptions& o) { return bool_value(o.run_fusion); }},
    {"knapsack", "knapsack", PlanOptionSpec::Kind::Enum, "exact|greedy",
     "weight-locality solver, in steps 2 and 4",
     [](PlanOptions& o, std::string_view v) -> SetResult {
       KnapsackAlgo algo;
       if (v == "exact") {
         algo = KnapsackAlgo::ExactDp;
       } else if (v == "greedy") {
         algo = KnapsackAlgo::GreedyDensity;
       } else {
         return strformat("expected 'exact' or 'greedy', got '%.*s'",
                          static_cast<int>(v.size()), v.data());
       }
       o.weight.algo = algo;
       o.remap.weight.algo = algo;
       return std::nullopt;
     },
     [](const PlanOptions& o) {
       return std::string(o.weight.algo == KnapsackAlgo::GreedyDensity
                              ? "greedy"
                              : "exact");
     }},
    {"objective", "objective", PlanOptionSpec::Kind::Enum, "latency|edp",
     "what remapping minimizes",
     [](PlanOptions& o, std::string_view v) -> SetResult {
       if (v == "latency") {
         o.remap.objective = RemapObjective::Latency;
       } else if (v == "edp") {
         o.remap.objective = RemapObjective::EnergyDelayProduct;
       } else {
         return strformat("expected 'latency' or 'edp', got '%.*s'",
                          static_cast<int>(v.size()), v.data());
       }
       return std::nullopt;
     },
     [](const PlanOptions& o) {
       return std::string(
           o.remap.objective == RemapObjective::EnergyDelayProduct
               ? "edp"
               : "latency");
     }},
    {"time-budget", "time_budget_s", PlanOptionSpec::Kind::Double, "",
     "wall-clock search budget in seconds",
     [](PlanOptions& o, std::string_view v) -> SetResult {
       double seconds = 0;
       const auto [ptr, ec] =
           std::from_chars(v.data(), v.data() + v.size(), seconds);
       if (ec != std::errc() || ptr != v.data() + v.size() ||
           !std::isfinite(seconds) || seconds <= 0) {
         return strformat("expected a positive number of seconds, got '%.*s'",
                          static_cast<int>(v.size()), v.data());
       }
       o.time_budget_s = seconds;
       return std::nullopt;
     },
     [](const PlanOptions& o) {
       return o.time_budget_s ? double_value(*o.time_budget_s)
                              : std::string();
     }},
}};

}  // namespace

std::span<const PlanOptionSpec> plan_option_specs() { return kSpecs; }

const PlanOptionSpec* find_plan_option(std::string_view key) {
  for (const PlanOptionSpec& spec : kSpecs) {
    if (key == spec.cli_key || key == spec.json_key) return &spec;
  }
  return nullptr;
}

std::optional<std::string> apply_plan_option(PlanOptions& options,
                                             std::string_view key,
                                             std::string_view value) {
  const PlanOptionSpec* spec = find_plan_option(key);
  if (spec == nullptr) {
    std::string known;
    for (const PlanOptionSpec& s : kSpecs) {
      if (!known.empty()) known += ", ";
      known += s.json_key;
    }
    return strformat("unknown plan option '%.*s' (valid: %s)",
                     static_cast<int>(key.size()), key.data(), known.c_str());
  }
  if (std::optional<std::string> err = spec->set(options, value)) {
    return strformat("%.*s: %s", static_cast<int>(key.size()), key.data(),
                     err->c_str());
  }
  return std::nullopt;
}

}  // namespace h2h
