#include "util/units.h"

// The unit helpers are constexpr and header-only; this TU anchors the
// library target. Human formatting lives in str.cpp to keep snprintf usage
// in one place.

namespace h2h {
namespace {
// intentionally empty
}  // namespace
}  // namespace h2h
