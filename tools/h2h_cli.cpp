// h2h — command-line driver for the H2H planner.
//
//   h2h list-models
//   h2h list-accelerators
//   h2h map --model <key> [--bw <GB/s>] [--batch <n>] [--no-remap]
//               [--knapsack exact|greedy] [--objective latency|edp]
//               [--time-budget <s>] [--save <file>] [--gantt] [--per-layer]
//   h2h replay --model <key> --load <file> [--bw <GB/s>]
//   h2h sweep [--csv <file>] [--time-budget <s>]
//
// Exit codes: 0 success, 1 usage error, 2 configuration error.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "h2h.h"
#include "model/summary.h"
#include "system/mapping_io.h"
#include "system/schedule_analysis.h"

namespace {

using namespace h2h;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = flags.find(key);
    return it == flags.end() ? std::nullopt : std::optional(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.contains(key);
  }
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view raw = argv[i];
    if (raw.rfind("--", 0) != 0) return std::nullopt;
    const std::string flag(raw.substr(2));
    // Boolean flags take no value.
    if (flag == "no-remap" || flag == "gantt" || flag == "per-layer") {
      args.flags.emplace(flag, std::string("1"));
    } else {
      if (i + 1 >= argc) return std::nullopt;
      args.flags.emplace(flag, std::string(argv[++i]));
    }
  }
  return args;
}

/// Parse a strictly positive, finite seconds value; nullopt (with a
/// diagnostic) on anything else — std::stod alone would abort the CLI on
/// junk and its `<= 0` check waves NaN through.
std::optional<double> parse_time_budget(const std::string& value) {
  try {
    std::size_t pos = 0;
    const double seconds = std::stod(value, &pos);
    if (pos == value.size() && std::isfinite(seconds) && seconds > 0)
      return seconds;
  } catch (const std::exception&) {
  }
  std::cerr << "error: --time-budget expects a positive number of seconds, "
               "got '"
            << value << "'\n";
  return std::nullopt;
}

void usage(std::ostream& out) {
  out << "usage:\n"
         "  h2h list-models\n"
         "  h2h list-accelerators\n"
         "  h2h map --model <key> [--bw <GB/s>] [--batch <n>]\n"
         "              [--no-remap] [--knapsack exact|greedy]\n"
         "              [--objective latency|edp] [--time-budget <s>]\n"
         "              [--save <file>] [--gantt] [--per-layer]\n"
         "  h2h replay --model <key> --load <file> [--bw <GB/s>]\n"
         "  h2h sweep [--csv <file>] [--time-budget <s>]\n";
}

int cmd_list_models() {
  TextTable table({"key", "domain", "backbones", "params (Table 2)"},
                  {TextTable::Align::Left, TextTable::Align::Left,
                   TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    table.add_row({std::string(info.key), std::string(info.domain),
                   std::string(info.backbones),
                   strformat("%.1fM", info.paper_params_millions)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_list_accelerators() {
  TextTable table({"name", "board", "dataflow", "kinds", "peak GMAC/s",
                   "M_acc", "DRAM BW"},
                  {TextTable::Align::Left, TextTable::Align::Left,
                   TextTable::Align::Left, TextTable::Align::Left});
  for (const AcceleratorSpec& s : standard_catalog()) {
    std::string kinds;
    if (s.kinds.conv) kinds += "Conv ";
    if (s.kinds.fc) kinds += "FC ";
    if (s.kinds.lstm) kinds += "LSTM";
    table.add_row(
        {s.name, s.board, std::string(to_string(s.style)), kinds,
         strformat("%.0f", static_cast<double>(s.peak_macs_per_cycle) *
                               s.freq_hz / 1e9),
         human_bytes(s.dram_capacity),
         strformat("%.1f GB/s", s.dram_bandwidth / 1e9)});
  }
  table.print(std::cout);
  return 0;
}

struct Common {
  ZooModel id;
  double bw_acc = 0;
  ModelGraph model;  // for report printing; the planner keeps its own copy
  SystemConfig sys;
};

std::optional<Common> load_common(const Args& args) {
  const std::string key = args.get("model").value_or("");
  const auto id = zoo_model_by_key(key);
  if (!id) {
    std::cerr << "error: unknown or missing --model '" << key << "'\n";
    return std::nullopt;
  }
  const double bw_gbps = std::stod(args.get("bw").value_or("0.5"));
  if (bw_gbps <= 0) {
    std::cerr << "error: --bw must be positive\n";
    return std::nullopt;
  }
  ModelGraph model = make_model(*id);
  if (const auto batch = args.get("batch")) {
    model.set_batch(static_cast<std::uint32_t>(std::stoul(*batch)));
  }
  return Common{*id, gbps(bw_gbps), std::move(model),
                SystemConfig::standard(gbps(bw_gbps))};
}

void print_result(const Common& c, const PlanResponse& r, const Args& args) {
  MappingReportOptions opts;
  opts.gantt = args.has("gantt");
  opts.per_layer = args.has("per-layer");
  print_mapping_report(c.model, c.sys, r, std::cout, opts);
}

int cmd_map(const Args& args) {
  auto common = load_common(args);
  if (!common) return 1;

  // The planner borrows the one system load_common built (shared-system
  // mode), so the report below is printed against exactly the system the
  // mapping was planned on.
  PlanRequest request = PlanRequest::for_graph(common->model, common->bw_acc);
  request.options.run_remapping = !args.has("no-remap");
  if (args.get("knapsack").value_or("exact") == "greedy") {
    request.options.weight.algo = KnapsackAlgo::GreedyDensity;
    request.options.remap.weight.algo = KnapsackAlgo::GreedyDensity;
  }
  if (args.get("objective").value_or("latency") == "edp") {
    request.options.remap.objective = RemapObjective::EnergyDelayProduct;
  }
  if (const auto budget = args.get("time-budget")) {
    const auto seconds = parse_time_budget(*budget);
    if (!seconds) return 1;
    request.time_budget_s = *seconds;
  }

  Planner planner(common->sys);
  const PlanResponse r = planner.plan(request);
  print_result(*common, r, args);
  if (request.time_budget_s) {
    if (r.stopped_on_budget) {
      std::cout << "time budget: remapping stopped on the "
                << strformat("%g s", *request.time_budget_s) << " budget\n";
    } else if (request.options.run_remapping) {
      std::cout << "time budget: search converged within the "
                << strformat("%g s", *request.time_budget_s) << " budget\n";
    } else {
      // Only the remapping pass is budget-aware; with --no-remap the
      // budget had nothing to enforce, so don't claim convergence.
      std::cout << "time budget: not enforced (--no-remap disables the only "
                   "budget-aware pass)\n";
    }
  }

  if (const auto path = args.get("save")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "error: cannot write '" << *path << "'\n";
      return 2;
    }
    write_mapping(out, common->model, common->sys, r.mapping, r.plan);
    std::cout << "saved mapping to " << *path << '\n';
  }
  return 0;
}

int cmd_replay(const Args& args) {
  auto common = load_common(args);
  if (!common) return 1;
  const auto path = args.get("load");
  if (!path) {
    std::cerr << "error: replay requires --load <file>\n";
    return 1;
  }
  std::ifstream in(*path);
  if (!in) {
    std::cerr << "error: cannot read '" << *path << "'\n";
    return 2;
  }
  const LoadedMapping loaded = read_mapping(in, common->model, common->sys);
  const Simulator sim(common->model, common->sys);
  const ScheduleResult r = sim.simulate(loaded.mapping, loaded.plan);
  std::cout << "replayed mapping: latency " << human_seconds(r.latency)
            << ", energy " << strformat("%.4f J", r.energy.total())
            << ", comp share " << format_percent(r.comp_ratio(), 1) << '\n';
  if (args.has("gantt"))
    print_gantt(common->model, common->sys, loaded.mapping, r, std::cout);
  return 0;
}

int cmd_sweep(const Args& args) {
  std::optional<double> time_budget_s;
  if (const auto budget = args.get("time-budget")) {
    time_budget_s = parse_time_budget(*budget);
    if (!time_budget_s) return 1;
  }
  Planner planner;  // one session cache across all 30 grid cells
  const std::vector<StepSeries> sweep =
      run_full_sweep(planner, {}, time_budget_s);
  print_fig4(sweep, std::cout);
  std::cout << '\n';
  print_table4(sweep, std::cout);
  std::cout << '\n';
  print_fig5a(sweep, std::cout);
  std::cout << '\n';
  print_fig5b(sweep, std::cout);
  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "error: cannot write '" << *path << "'\n";
      return 2;
    }
    write_sweep_csv(sweep, out);
    std::cout << "\nwrote " << *path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage(std::cerr);
    return 1;
  }
  try {
    if (args->command == "list-models") return cmd_list_models();
    if (args->command == "list-accelerators") return cmd_list_accelerators();
    if (args->command == "map") return cmd_map(*args);
    if (args->command == "replay") return cmd_replay(*args);
    if (args->command == "sweep") return cmd_sweep(*args);
    usage(std::cerr);
    return 1;
  } catch (const h2h::ConfigError& e) {
    std::cerr << "configuration error: " << e.what() << '\n';
    return 2;
  }
}
