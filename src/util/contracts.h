// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects/Ensures (GSL). Violations are programming errors: they throw
// ContractViolation so tests can observe them, and they are never compiled
// out (the library is control-plane code; the cost is negligible).
#pragma once

#include <string_view>

namespace h2h {

/// Thrown when a precondition, postcondition, or invariant is violated.
/// Deriving from std::logic_error would drag <stdexcept> into every header;
/// we keep a dedicated type in error.h instead. See contracts.cpp.
[[noreturn]] void contract_failure(std::string_view kind, std::string_view cond,
                                   std::string_view file, int line);

namespace detail {
inline void check(bool ok, std::string_view kind, std::string_view cond,
                  std::string_view file, int line) {
  if (!ok) contract_failure(kind, cond, file, line);
}
}  // namespace detail

}  // namespace h2h

// Function-style macros are the one idiomatic exception the Core Guidelines
// allow for source-location capture (pre-C++20-source_location codebases use
// exactly this shape; we keep them scream-case and prefixed).
#define H2H_EXPECTS(cond) \
  ::h2h::detail::check(static_cast<bool>(cond), "precondition", #cond, __FILE__, __LINE__)
#define H2H_ENSURES(cond) \
  ::h2h::detail::check(static_cast<bool>(cond), "postcondition", #cond, __FILE__, __LINE__)
#define H2H_ASSERT(cond) \
  ::h2h::detail::check(static_cast<bool>(cond), "invariant", #cond, __FILE__, __LINE__)
