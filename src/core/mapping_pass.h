// The composable mapping-pass pipeline behind the Planner facade
// (DESIGN.md §7).
//
// Each of the paper's four steps — and the baseline/dynamic-modality
// variants that used to be bespoke entry points — is a MappingPass: a named
// transformation of the shared PassContext (mapping + locality plan over one
// Simulator). A pipeline is an ordered vector of passes; the driver
// (run_passes in planner.h) executes them in order and records a schedule
// snapshot after each, reproducing the per-step series of Fig. 4 / Table 4.
//
// Ordering invariants (DESIGN.md §7): exactly one seeding pass
// (computation-prioritized, cluster, or warm-start) must run first and leave
// the mapping complete; weight locality must precede activation fusion
// (fusion budgets the DRAM capacity left by pins); remapping must come last
// (it re-runs steps 2-3 internally per move). The builders in planner.h
// enforce this; hand-assembled pipelines are expected to follow it.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/comp_prioritized.h"
#include "core/remapping.h"

namespace h2h {

/// Shared state a pipeline threads through its passes. The simulator is the
/// session's cached cost state (the Planner guarantees it outlives the run);
/// mapping and plan are the solution being grown in place.
struct PassContext {
  const Simulator& sim;
  Mapping& mapping;
  LocalityPlan& plan;
  /// Filled by the remapping pass (zeroes otherwise).
  RemapStats& remap_stats;
  /// Absolute wall-clock deadline for budget-aware passes (remapping);
  /// nullopt runs to convergence.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Set when a budget-aware pass stopped on `deadline` before converging.
  bool stopped_on_budget = false;
};

/// One stage of the pipeline. Implementations must be deterministic (same
/// context in, same context out) — the per-step reproducibility of the
/// paper's tables and the probe/rollback equivalence in step 4 depend on it.
class MappingPass {
 public:
  virtual ~MappingPass() = default;

  /// Snapshot label recorded after the pass runs (e.g. "2: weight
  /// locality"); also the key PlanResponse::baseline_result() matches on.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  virtual void run(PassContext& ctx) const = 0;

 protected:
  explicit MappingPass(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

using PassPipeline = std::vector<std::unique_ptr<MappingPass>>;

// Factories for the concrete passes. Every pass takes an optional snapshot
// label so pipeline variants (dynamic modality, cluster baseline) can keep
// their historical step names.

/// Step 1 — computation-prioritized mapping (§4.1). Seeds the mapping; the
/// options carry the dynamic-modality placement-preference hook.
[[nodiscard]] std::unique_ptr<MappingPass> make_comp_prioritized_pass(
    CompPrioritizedOptions options = {},
    std::string name = "1: computation-prioritized");

/// Seeding alternative: adopt a complete mapping from a prior PlanResponse
/// (same model, any locality state — pins/fusion are recomputed by the
/// following passes). The mapping is copied at pipeline-build time.
[[nodiscard]] std::unique_ptr<MappingPass> make_warm_start_pass(
    Mapping warm_start, std::string name = "1: warm start");

/// Seeding alternative: communication-prioritized clustering (§2 baseline) —
/// one accelerator per modality backbone, unsupported layers spilled to
/// their fastest supporting accelerator.
[[nodiscard]] std::unique_ptr<MappingPass> make_cluster_mapping_pass(
    std::string name = "cluster mapping");

/// Step 2 — weight locality knapsack (§4.2). Options carry the
/// dynamic-modality force-pin hook.
[[nodiscard]] std::unique_ptr<MappingPass> make_weight_locality_pass(
    WeightLocalityOptions options = {},
    std::string name = "2: weight locality");

/// Step 3 — activation transfer optimization (§4.3).
[[nodiscard]] std::unique_ptr<MappingPass> make_activation_fusion_pass(
    FusionOptions options = {}, std::string name = "3: activation fusion");

/// Step 4 — data-locality-aware remapping (§4.4). Honors the context
/// deadline and reports budget exhaustion through PassContext.
[[nodiscard]] std::unique_ptr<MappingPass> make_remapping_pass(
    RemapOptions options = {},
    std::string name = "4: locality-aware remapping");

}  // namespace h2h
