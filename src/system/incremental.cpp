#include "system/incremental.h"

#include <algorithm>

namespace h2h {

namespace {
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
// Overlay stamp value no probe epoch ever takes (see reset/probe_remap).
constexpr std::uint32_t kOverlaySentinel = 0xFFFFFFFFu;
}  // namespace

void IncrementalSchedule::reset(const Mapping& m, const LocalityPlan& plan) {
  const ModelGraph& model = sim_->model();
  const SystemConfig& sys = sim_->sys();
  H2H_EXPECTS(m.complete());
  H2H_EXPECTS(!journaling_);

  timings_.assign(model.layer_count(), LayerTiming{});
  queues_ = m.acc_queues(sys);
  pos_.assign(model.layer_count(), kNoPos);
  acc_.assign(model.layer_count(), AccId{});
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    for (std::uint32_t i = 0; i < queues_[q].size(); ++i) {
      pos_[queues_[q][i].value] = i;
      acc_[queues_[q][i].value] = AccId{q};
    }
  }
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) acc_[id.value] = AccId::host();
  }
  pending_stamp_.assign(model.layer_count(), 0);
  refreshed_stamp_.assign(model.layer_count(), 0);
  stamp_ = 0;
  saved_stamp_.assign(model.layer_count(), 0);
  save_epoch_ = 0;
  ov_timings_.assign(model.layer_count(), LayerTiming{});
  // Sentinel stamp: until the first probe_remap bumps probe_epoch_ past 0,
  // no entry may match, so cur() reads committed timings only (the epoch
  // counter skips the sentinel on wrap-around for the same reason).
  ov_stamp_.assign(model.layer_count(), kOverlaySentinel);
  probe_epoch_ = 0;

  // Sequence numbers of a complete mapping are dense in [0, V) and never
  // change after assignment (reassign keeps them); cache them flat and
  // invert them once so the retime sweep can walk nodes in execution order
  // by index without per-access contract checks.
  seq_.assign(model.layer_count(), 0);
  by_seq_.assign(model.layer_count(), LayerId{});
  for (const LayerId id : model.all_layers()) {
    seq_[id.value] = m.seq_of(id);
    H2H_ASSERT(seq_[id.value] < by_seq_.size() &&
               !by_seq_[seq_[id.value]].valid());
    by_seq_[seq_[id.value]] = id;
  }

  // Initial full timing in sequence order.
  std::vector<double> acc_free(sys.accelerator_count(), 0.0);
  for (const LayerId id : by_seq_) {
    LayerTiming t = sim_->layer_components(id, m, plan);
    if (!acc_[id.value].is_host()) {
      double ready = 0.0;
      for (const LayerId p : model.graph().preds(id))
        ready = std::max(ready, timings_[p.value].finish);
      t.start = std::max(ready, acc_free[acc_[id.value].value]);
      t.finish = t.start + t.duration();
      acc_free[acc_[id.value].value] = t.finish;
    }
    timings_[id.value] = t;
  }
}

LayerId IncrementalSchedule::queue_prev(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  return p == 0 ? LayerId{} : queues_[a.value][p - 1];
}

LayerId IncrementalSchedule::queue_next(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  const auto& q = queues_[a.value];
  return p + 1 < q.size() ? q[p + 1] : LayerId{};
}

void IncrementalSchedule::save_timing(LayerId id) {
  if (!journaling_ || saved_stamp_[id.value] == save_epoch_) return;
  saved_stamp_[id.value] = save_epoch_;
  journal_timings_.emplace_back(id, timings_[id.value]);
}

void IncrementalSchedule::begin_retime() {
  sweep_min_ = 0xFFFFFFFFu;
  sweep_max_ = 0;
  if (++stamp_ == 0) {  // stamp wrapped: invalidate all stale marks
    std::fill(pending_stamp_.begin(), pending_stamp_.end(), 0u);
    std::fill(refreshed_stamp_.begin(), refreshed_stamp_.end(), 0u);
    stamp_ = 1;
  }
}

void IncrementalSchedule::enqueue(LayerId id) {
  // Host-resident layers (the Inputs) never re-time; acc_ is the cached
  // placement, so no model or mapping dereference on this path.
  if (!id.valid() || acc_[id.value].is_host()) return;
  const std::uint32_t seq = seq_[id.value];
  if (pending_stamp_[seq] == stamp_) return;
  pending_stamp_[seq] = stamp_;
  sweep_min_ = std::min(sweep_min_, seq);
  sweep_max_ = std::max(sweep_max_, seq);
}

void IncrementalSchedule::retime() {
  const ModelGraph& model = sim_->model();
  // Monotone sweep in execution order (see the member comment): everything a
  // visited node enqueues lies ahead of the cursor, so one forward walk over
  // the pending range visits each node at most once, in exactly the
  // ascending-seq order the old min-heap produced.
  for (std::uint32_t s = sweep_min_; s <= sweep_max_; ++s) {
    if (pending_stamp_[s] != stamp_) continue;
    const LayerId id = by_seq_[s];
    ++retimes_;

    LayerTiming& t = timings_[id.value];
    double ready = 0.0;
    for (const LayerId p : model.graph().preds(id))
      ready = std::max(ready, timings_[p.value].finish);
    const LayerId prev = queue_prev(id);
    const double free_at = prev.valid() ? timings_[prev.value].finish : 0.0;
    const double start = std::max(ready, free_at);
    const double finish = start + t.duration();
    if (start == t.start && finish == t.finish) continue;  // cone stops here
    const double old_finish = t.finish;
    save_timing(id);
    t.start = start;
    t.finish = finish;
    if (cone_filter_) {
      // Enqueue a consumer unless both the old and the new finish stay
      // below its current start (see set_cone_filter); ordered so the
      // common truly-affected consumer costs one comparison.
      for (const LayerId y : model.graph().succs(id)) {
        if (!y.valid() || acc_[y.value].is_host()) continue;
        const double ys = timings_[y.value].start;
        if (finish > ys || old_finish >= ys) enqueue(y);
      }
      if (const LayerId qn = queue_next(id); qn.valid()) {
        const double ys = timings_[qn.value].start;
        if (finish > ys || old_finish >= ys) enqueue(qn);
      }
    } else {
      for (const LayerId y : model.graph().succs(id)) enqueue(y);
      enqueue(queue_next(id));
    }
  }
}

void IncrementalSchedule::refresh_one(const Mapping& m,
                                      const LocalityPlan& plan, LayerId id) {
  if (refreshed_stamp_[id.value] == stamp_) return;  // already this batch
  refreshed_stamp_[id.value] = stamp_;
  save_timing(id);
  LayerTiming& t = timings_[id.value];
  const LayerTiming fresh = sim_->layer_components(id, m, plan);
  t.t_in = fresh.t_in;
  t.t_weight = fresh.t_weight;
  t.t_compute = fresh.t_compute;
  t.t_out = fresh.t_out;
  t.t_host = fresh.t_host;
  t.t_local = fresh.t_local;
  t.host_bytes = fresh.host_bytes;
  t.local_bytes = fresh.local_bytes;
  enqueue(id);
}

void IncrementalSchedule::refresh_components(const Mapping& m,
                                             const LocalityPlan& plan,
                                             std::span<const LayerId> dirty) {
  if (dirty.empty()) return;  // nothing changed: skip the retime setup too
  begin_retime();
  for (const LayerId id : dirty) refresh_one(m, plan, id);
  retime();
}

LayerId IncrementalSchedule::relocate(const Mapping& m, LayerId node,
                                      AccId old_acc) {
  H2H_EXPECTS(!old_acc.is_host() && old_acc.value < queues_.size());
  const AccId new_acc = m.acc_of(node);
  H2H_EXPECTS(new_acc != old_acc);

  // Remove from the old queue.
  auto& oq = queues_[old_acc.value];
  const std::uint32_t old_pos = pos_[node.value];
  H2H_ASSERT(old_pos < oq.size() && oq[old_pos] == node);
  if (journaling_) journal_moves_.push_back({node, old_acc, old_pos, new_acc});
  oq.erase(oq.begin() + old_pos);
  for (std::uint32_t i = old_pos; i < oq.size(); ++i) pos_[oq[i].value] = i;
  const LayerId old_follower = old_pos < oq.size() ? oq[old_pos] : LayerId{};

  // Insert into the new queue by sequence.
  auto& nq = queues_[new_acc.value];
  const auto it = std::lower_bound(
      nq.begin(), nq.end(), node, [this](LayerId lhs, LayerId rhs) {
        return seq_[lhs.value] < seq_[rhs.value];
      });
  const auto new_pos = static_cast<std::uint32_t>(it - nq.begin());
  nq.insert(it, node);
  for (std::uint32_t i = new_pos; i < nq.size(); ++i) pos_[nq[i].value] = i;
  acc_[node.value] = new_acc;
  return old_follower;
}

void IncrementalSchedule::apply_remap(const Mapping& m,
                                      const LocalityPlan& plan, LayerId node,
                                      AccId old_acc) {
  const AccId new_acc = m.acc_of(node);
  (void)relocate(m, node, old_acc);

  // Every layer on either accelerator may have changed transfer components
  // (the locality passes redistribute pins and fusion there). Refreshing
  // both queues also seeds the retime with the node itself and both queue
  // followers, which covers the displaced FIFO slots.
  begin_retime();
  for (const LayerId id : queues_[old_acc.value]) refresh_one(m, plan, id);
  for (const LayerId id : queues_[new_acc.value]) refresh_one(m, plan, id);
  // Non-uniform topology: an unfused successor on a third accelerator reads
  // its in-edge from the node over a different link now — its components
  // changed even though its own placement did not. Gated so the uniform
  // path keeps the exact legacy refresh set (and retime counts).
  if (!sim_->costs().uniform_links())
    for (const LayerId s : sim_->model().graph().succs(node))
      refresh_one(m, plan, s);
  retime();
}

void IncrementalSchedule::apply_remap(const Mapping& m,
                                      const LocalityPlan& plan, LayerId node,
                                      AccId old_acc,
                                      std::span<const LayerId> dirty) {
  const LayerId old_follower = relocate(m, node, old_acc);

  begin_retime();
  refresh_one(m, plan, node);
  for (const LayerId id : dirty) refresh_one(m, plan, id);
  // The displaced FIFO slots: components unchanged, start times may not be.
  enqueue(old_follower);
  enqueue(queue_next(node));
  retime();
}

LayerTiming& IncrementalSchedule::overlay(LayerId id) {
  if (ov_stamp_[id.value] != probe_epoch_) {  // copy-on-first-touch
    ov_timings_[id.value] = timings_[id.value];
    ov_stamp_[id.value] = probe_epoch_;
  }
  return ov_timings_[id.value];
}

LayerId IncrementalSchedule::eff_queue_prev(LayerId id) const {
  if (id == probe_node_) {
    const auto& q = queues_[probe_new_acc_.value];
    return probe_ins_ == 0 ? LayerId{} : q[probe_ins_ - 1];
  }
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  LayerId prev = p == 0 ? LayerId{} : queues_[a.value][p - 1];
  if (prev == probe_node_) {
    // The node left this (its old) queue; its own predecessor takes over.
    prev = probe_old_prev_;
  } else if (a == probe_new_acc_ && probe_ins_ == p) {
    prev = probe_node_;  // the node lands directly before id
  }
  return prev;
}

LayerId IncrementalSchedule::eff_queue_next(LayerId id) const {
  if (id == probe_node_) {
    const auto& q = queues_[probe_new_acc_.value];
    return probe_ins_ < q.size() ? q[probe_ins_] : LayerId{};
  }
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  const auto& q = queues_[a.value];
  LayerId next = p + 1 < q.size() ? q[p + 1] : LayerId{};
  if (next == probe_node_) {
    next = probe_old_next_;
  } else if (a == probe_new_acc_ && probe_ins_ == p + 1) {
    next = probe_node_;  // the node lands directly after id
  }
  return next;
}

void IncrementalSchedule::probe_refresh(const Mapping& m,
                                        const LocalityPlan& plan, LayerId id) {
  // Mirrors refresh_one, writing the overlay instead of the journaled state.
  if (refreshed_stamp_[id.value] == stamp_) return;  // already this batch
  refreshed_stamp_[id.value] = stamp_;
  LayerTiming& t = overlay(id);
  const LayerTiming fresh = sim_->layer_components(id, m, plan);
  t.t_in = fresh.t_in;
  t.t_weight = fresh.t_weight;
  t.t_compute = fresh.t_compute;
  t.t_out = fresh.t_out;
  t.t_host = fresh.t_host;
  t.t_local = fresh.t_local;
  t.host_bytes = fresh.host_bytes;
  t.local_bytes = fresh.local_bytes;
  enqueue(id);
}

void IncrementalSchedule::probe_retime() {
  const ModelGraph& model = sim_->model();
  // Mirrors retime() — same sweep, same seeds, same comparisons — against
  // the overlay view, so the probe's arithmetic is bit-identical to
  // applying the move (pinned by the property tests).
  for (std::uint32_t s = sweep_min_; s <= sweep_max_; ++s) {
    if (pending_stamp_[s] != stamp_) continue;
    const LayerId id = by_seq_[s];
    ++retimes_;

    const LayerTiming& base = cur(id);
    double ready = 0.0;
    for (const LayerId p : model.graph().preds(id))
      ready = std::max(ready, cur(p).finish);
    const LayerId prev = eff_queue_prev(id);
    const double free_at = prev.valid() ? cur(prev).finish : 0.0;
    const double start = std::max(ready, free_at);
    const double finish = start + base.duration();
    if (start == base.start && finish == base.finish) continue;
    const double old_finish = base.finish;  // before overlay() may alias base
    LayerTiming& t = overlay(id);
    t.start = start;
    t.finish = finish;
    if (cone_filter_) {
      for (const LayerId y : model.graph().succs(id)) {
        if (!y.valid() || acc_[y.value].is_host()) continue;
        const double ys = cur(y).start;
        if (finish > ys || old_finish >= ys) enqueue(y);
      }
      if (const LayerId qn = eff_queue_next(id); qn.valid()) {
        const double ys = cur(qn).start;
        if (finish > ys || old_finish >= ys) enqueue(qn);
      }
    } else {
      for (const LayerId y : model.graph().succs(id)) enqueue(y);
      enqueue(eff_queue_next(id));
    }
  }
}

double IncrementalSchedule::probe_remap(const Mapping& m,
                                        const LocalityPlan& plan, LayerId node,
                                        AccId old_acc,
                                        std::span<const LayerId> dirty) {
  const AccId new_acc = m.acc_of(node);
  H2H_EXPECTS(!old_acc.is_host() && old_acc.value < queues_.size());
  H2H_EXPECTS(new_acc != old_acc && !new_acc.is_host());
  H2H_EXPECTS(acc_[node.value] == old_acc);  // schedule still holds old state

  if (++probe_epoch_ == kOverlaySentinel) {  // wrap: invalidate stale marks
    std::fill(ov_stamp_.begin(), ov_stamp_.end(), kOverlaySentinel);
    probe_epoch_ = 1;
  }
  probe_node_ = node;
  probe_new_acc_ = new_acc;
  const auto& nq = queues_[new_acc.value];
  probe_ins_ = static_cast<std::uint32_t>(
      std::lower_bound(nq.begin(), nq.end(), node,
                       [this](LayerId lhs, LayerId rhs) {
                         return seq_[lhs.value] < seq_[rhs.value];
                       }) -
      nq.begin());
  // The node's neighbours in the queue it (virtually) leaves, resolved once
  // so the sweep's eff_queue_prev/next calls are plain loads.
  const auto& oq = queues_[old_acc.value];
  const std::uint32_t np = pos_[node.value];
  probe_old_prev_ = np == 0 ? LayerId{} : oq[np - 1];
  probe_old_next_ = np + 1 < oq.size() ? oq[np + 1] : LayerId{};

  // Same seeds as apply_remap: the node, the explicit dirty set, and the
  // two displaced FIFO followers.
  begin_retime();
  probe_refresh(m, plan, node);
  for (const LayerId id : dirty) probe_refresh(m, plan, id);
  enqueue(queue_next(node));      // old queue's follower (node still listed)
  enqueue(eff_queue_next(node));  // new queue's follower
  probe_retime();

  // Makespan: per-queue finishes stay monotone, so only the last effective
  // element of each queue matters; the moved node shifts at most which
  // element that is on its two queues.
  double out = 0.0;
  for (std::uint32_t a = 0; a < queues_.size(); ++a) {
    const auto& q = queues_[a];
    LayerId last = q.empty() ? LayerId{} : q.back();
    if (AccId{a} == old_acc && last == node)
      last = q.size() >= 2 ? q[q.size() - 2] : LayerId{};
    else if (AccId{a} == new_acc && probe_ins_ == q.size())
      last = node;
    if (last.valid()) out = std::max(out, cur(last).finish);
  }
  return out;
}

EnergyBreakdown IncrementalSchedule::probe_energy(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  EnergyBreakdown e;
  double latency = 0.0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = cur(id);
    e += sim_->layer_energy(id, m, t);
    latency = std::max(latency, t.finish);
  }
  e.static_power = sim_->sys().static_energy(latency);
  return e;
}

void IncrementalSchedule::begin_journal() {
  H2H_EXPECTS(!journaling_);
  H2H_EXPECTS(!timings_.empty());  // reset() must have run
  journal_timings_.clear();
  journal_moves_.clear();
  if (++save_epoch_ == 0) {  // epoch wrapped: invalidate all stale marks
    std::fill(saved_stamp_.begin(), saved_stamp_.end(), 0u);
    save_epoch_ = 1;
  }
  journaling_ = true;
}

void IncrementalSchedule::rollback_journal() {
  H2H_EXPECTS(journaling_);
  // Reverse the queue surgery, newest move first.
  for (auto it = journal_moves_.rbegin(); it != journal_moves_.rend(); ++it) {
    auto& nq = queues_[it->new_acc.value];
    const std::uint32_t cur = pos_[it->node.value];
    H2H_ASSERT(cur < nq.size() && nq[cur] == it->node);
    nq.erase(nq.begin() + cur);
    for (std::uint32_t i = cur; i < nq.size(); ++i) pos_[nq[i].value] = i;
    auto& oq = queues_[it->old_acc.value];
    oq.insert(oq.begin() + it->old_pos, it->node);
    for (std::uint32_t i = it->old_pos; i < oq.size(); ++i)
      pos_[oq[i].value] = i;
    acc_[it->node.value] = it->old_acc;
  }
  // Restore saved timings (each node saved once; order is irrelevant).
  for (const auto& [id, t] : journal_timings_) timings_[id.value] = t;
  journal_timings_.clear();
  journal_moves_.clear();
  journaling_ = false;
}

void IncrementalSchedule::commit_journal() {
  H2H_EXPECTS(journaling_);
  journal_timings_.clear();
  journal_moves_.clear();
  journaling_ = false;
}

double IncrementalSchedule::latency() const noexcept {
  // Along one FIFO queue each layer starts no earlier than its predecessor's
  // finish, so finishes are monotone and the queue's last element carries
  // the accelerator's makespan; host-resident inputs finish at 0.
  double out = 0.0;
  for (const auto& q : queues_)
    if (!q.empty()) out = std::max(out, timings_[q.back().value].finish);
  return out;
}

EnergyBreakdown IncrementalSchedule::energy(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  EnergyBreakdown e;
  double latency = 0.0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = timings_[id.value];
    e += sim_->layer_energy(id, m, t);
    latency = std::max(latency, t.finish);
  }
  e.static_power = sim_->sys().static_energy(latency);
  return e;
}

ScheduleResult IncrementalSchedule::result(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  ScheduleResult r;
  r.timings = timings_;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = timings_[id.value];
    r.comp_time += t.t_compute;
    r.local_time += t.t_local;
    r.host_time += t.t_host;
    r.host_bytes += t.host_bytes;
    r.local_bytes += t.local_bytes;
    r.energy += sim_->layer_energy(id, m, t);
    r.latency = std::max(r.latency, t.finish);
  }
  r.energy.static_power = sim_->sys().static_energy(r.latency);
  return r;
}

}  // namespace h2h
