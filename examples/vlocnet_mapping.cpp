// The paper's flagship workload: VLocNet (AR visual localization, ResNet-50
// backbones, ~155 Table-1 layers in our reconstruction) mapped onto the
// 12-accelerator system across all five bandwidth settings through one
// Planner session cache. Prints the per-accelerator utilization profile of
// the final mapping and a DOT dump of the mapped model for visualization.
#include <fstream>
#include <iostream>
#include <map>

#include "graph/dot.h"
#include "h2h.h"

int main() {
  using namespace h2h;

  const ModelGraph model = make_vlocnet();
  print_model_summary(model, std::cout);

  Planner planner;  // one session per bandwidth setting, built on first use
  for (const BandwidthSetting bw : all_bandwidth_settings()) {
    const SystemConfig sys = SystemConfig::standard(bw);
    const PlanResponse result =
        planner.plan(PlanRequest::zoo(ZooModel::VLocNet, bw));

    std::cout << "\n=== BW_acc " << to_string(bw) << " ("
              << strformat("%.3f GB/s", bandwidth_value(bw) / 1e9) << ") ===\n";
    std::cout << "latency: baseline " << human_seconds(result.baseline_result().latency)
              << " -> H2H " << human_seconds(result.final_result().latency)
              << " (" << format_percent(1.0 - result.latency_vs_baseline(), 1)
              << " reduction), " << result.remap_stats.accepted
              << " remaps accepted in " << result.remap_stats.passes
              << " passes\n";

    // Per-accelerator occupancy of the final mapping.
    std::map<std::string, std::pair<int, double>> occupancy;  // name -> (layers, busy s)
    const ScheduleResult& sched = result.final_result();
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      const AcceleratorSpec& spec = sys.spec(result.mapping.acc_of(id));
      auto& [count, busy] = occupancy[spec.name];
      ++count;
      busy += sched.timings[id.value].duration();
    }
    std::cout << "accelerator occupancy:\n";
    for (const auto& [name, stats] : occupancy) {
      std::cout << "  " << name << ": " << stats.first << " layers, busy "
                << human_seconds(stats.second) << '\n';
    }
  }

  // DOT export of the mapping at the lowest bandwidth, colored by
  // accelerator, for inspection with graphviz. The Low- session is still
  // cached from the sweep above, so this re-plan is warm: setup is skipped
  // and no accelerator model is queried again.
  const PlanResponse result = planner.plan(
      PlanRequest::zoo(ZooModel::VLocNet, BandwidthSetting::LowMinus));
  std::cout << "\nre-plan @ Low- for the DOT export: "
            << (result.warm ? "warm (session cache hit)" : "cold")
            << ", search " << human_seconds(result.search_seconds) << '\n';
  static const char* kPalette[] = {
      "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
      "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f"};
  const std::string dot = to_dot(
      model.graph(),
      [&](NodeId n) { return model.layer(n).name; },
      [&](NodeId n) -> std::string {
        const AccId acc = result.mapping.acc_of(n);
        if (acc.is_host()) return "fillcolor=white";
        return strformat("fillcolor=\"%s\"", kPalette[acc.value % 12]);
      });
  std::ofstream("vlocnet_mapping.dot") << dot;
  std::cout << "wrote vlocnet_mapping.dot (render with: dot -Tsvg ...)\n";
  return 0;
}
