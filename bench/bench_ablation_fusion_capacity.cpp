// Ablation: activation-fusion capacity accounting (DESIGN.md §6). The paper
// is silent on whether fused activation buffers share M_acc with pinned
// weights; we default to strict sharing. This bench quantifies what
// unbounded fusion would claim instead, and how much latency strictness
// costs on the standard system.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_FusionPass(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  for (auto _ : state) {
    const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
    benchmark::DoNotOptimize(stats.fused_edges);
  }
}
BENCHMARK(BM_FusionPass)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "strict lat (s)", "unbounded lat (s)", "gap",
                   "strict fused", "unbounded fused"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);

    PlanOptions strict;
    PlanOptions loose;
    loose.fusion.enforce_capacity = false;
    loose.remap.fusion.enforce_capacity = false;

    const PlanResponse rs = plan_once(model, sys, strict);
    const PlanResponse rl = plan_once(model, sys, loose);
    table.add_row(
        {std::string(info.key), strformat("%.6f", rs.final_result().latency),
         strformat("%.6f", rl.final_result().latency),
         format_percent(rs.final_result().latency /
                            rl.final_result().latency - 1.0, 2),
         strformat("%zu", rs.plan.fused_edge_count()),
         strformat("%zu", rl.plan.fused_edge_count())});
  }
  std::cout << "fusion-capacity ablation (strict vs unbounded) @ Low-:\n";
  table.print(std::cout);
  std::cout << "\n(strict == unbounded where local DRAM never saturates)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
