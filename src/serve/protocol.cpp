#include "serve/protocol.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <utility>
#include <vector>

#include "accel/capability.h"
#include "serve/json.h"
#include "util/error.h"
#include "util/str.h"
#include "util/units.h"

namespace h2h::serve {
namespace {

constexpr std::uint32_t kMaxBatch = 4096;
constexpr std::uint32_t kMaxRounds = 64;

[[nodiscard]] std::string known_zoo_keys() {
  std::string keys;
  for (const ZooInfo& info : zoo_catalog()) {
    if (!keys.empty()) keys += ", ";
    keys += info.key;
  }
  return keys;
}

/// Canonical-string -> JSON value for one option row (inverse of the string
/// conversion parse_options does). Unset options return null.
[[nodiscard]] json::Value option_value(const PlanOptionSpec& spec,
                                       const PlanOptions& options) {
  const std::string v = spec.get(options);
  if (v.empty()) return json::Value(nullptr);
  switch (spec.kind) {
    case PlanOptionSpec::Kind::Bool:
      return json::Value(v == "true");
    case PlanOptionSpec::Kind::Double: {
      double d = 0;
      const auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), d);
      H2H_ASSERT(ec == std::errc() && ptr == v.data() + v.size());
      return json::Value(d);
    }
    case PlanOptionSpec::Kind::Enum:
      return json::Value(v);
  }
  H2H_ASSERT(false);
  return json::Value(nullptr);
}

/// parse_links_object result: a topology, or (code, error) on failure.
struct LinksParse {
  std::optional<Interconnect> links;
  ErrorCode code = ErrorCode::BadField;
  std::string error;  // empty = success
};

/// Parse the request's "links" object (schema in protocol.h). Strict like
/// the rest of the wire: unknown fields are rejected, every value is
/// type-checked, and Interconnect's own validation errors surface as
/// bad_field.
[[nodiscard]] LinksParse parse_links_object(const json::Object& obj) {
  LinksParse out;
  const auto fail = [&out](ErrorCode code, std::string message) {
    out.code = code;
    out.error = std::move(message);
    return out;
  };

  const json::Value* shape = obj.find("shape");
  if (shape == nullptr || !shape->is_string()) {
    return fail(ErrorCode::BadField,
                "links.shape: expected \"uniform\", \"mixed\", or "
                "\"hierarchical\" (required)");
  }
  const std::string& kind = shape->as_string();

  std::vector<std::string_view> allowed{"shape"};
  if (kind == "uniform") {
    allowed.insert(allowed.end(), {"bw_gbps"});
  } else if (kind == "mixed") {
    allowed.insert(allowed.end(), {"bw_gbps", "overrides"});
  } else if (kind == "hierarchical") {
    allowed.insert(allowed.end(), {"group_size", "intra_gbps", "uplink_gbps",
                                   "host_gbps", "hop_latency_us"});
  } else {
    return fail(ErrorCode::BadField,
                strformat("links.shape: unknown shape '%s'", kind.c_str()));
  }
  for (const json::Object::Member& m : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), m.key) == allowed.end()) {
      return fail(ErrorCode::UnknownField,
                  strformat("links.%s: unknown field for shape %s",
                            m.key.c_str(), kind.c_str()));
    }
  }

  // Required/optional positive numbers, spelled in GB/s on the wire.
  const auto number = [&obj](std::string_view key, bool required,
                             double fallback, double& dst) -> std::string {
    const json::Value* v = obj.find(key);
    if (v == nullptr) {
      if (required)
        return strformat("links.%.*s: required for this shape",
                         static_cast<int>(key.size()), key.data());
      dst = fallback;
      return {};
    }
    if (!v->is_number())
      return strformat("links.%.*s: expected a number",
                       static_cast<int>(key.size()), key.data());
    dst = v->as_number();
    return {};
  };

  try {
    if (kind == "uniform") {
      double bw = 0;
      if (std::string err = number("bw_gbps", true, 0, bw); !err.empty())
        return fail(ErrorCode::BadField, std::move(err));
      out.links = Interconnect::uniform(gbps(bw));
    } else if (kind == "mixed") {
      double bw = 0;
      if (std::string err = number("bw_gbps", true, 0, bw); !err.empty())
        return fail(ErrorCode::BadField, std::move(err));
      std::vector<Interconnect::Override> overrides;
      if (const json::Value* ov = obj.find("overrides")) {
        if (!ov->is_array())
          return fail(ErrorCode::BadField,
                      "links.overrides: expected an array");
        for (const json::Value& entry : ov->as_array()) {
          if (!entry.is_object())
            return fail(ErrorCode::BadField,
                        "links.overrides: expected objects with acc, bw_gbps");
          const json::Object& e = entry.as_object();
          for (const json::Object::Member& m : e.members()) {
            if (m.key != "acc" && m.key != "bw_gbps") {
              return fail(ErrorCode::UnknownField,
                          strformat("links.overrides.%s: unknown field",
                                    m.key.c_str()));
            }
          }
          const json::Value* acc = e.find("acc");
          const json::Value* obw = e.find("bw_gbps");
          if (acc == nullptr || !acc->is_number() ||
              acc->as_number() < 0 ||
              acc->as_number() != std::floor(acc->as_number())) {
            return fail(ErrorCode::BadField,
                        "links.overrides.acc: expected a non-negative "
                        "integer (required)");
          }
          if (obw == nullptr || !obw->is_number()) {
            return fail(ErrorCode::BadField,
                        "links.overrides.bw_gbps: expected a number "
                        "(required)");
          }
          overrides.emplace_back(static_cast<std::uint32_t>(acc->as_number()),
                                 gbps(obw->as_number()));
        }
      }
      out.links = Interconnect::mixed(gbps(bw), std::move(overrides));
    } else {
      const json::Value* group = obj.find("group_size");
      if (group == nullptr || !group->is_number() ||
          group->as_number() < 1 ||
          group->as_number() != std::floor(group->as_number())) {
        return fail(ErrorCode::BadField,
                    "links.group_size: expected a positive integer "
                    "(required)");
      }
      Interconnect::HierarchicalSpec spec;
      spec.group_size = static_cast<std::uint32_t>(group->as_number());
      double intra = 0, uplink = 0, host = 0, lat_us = 0;
      for (std::string err :
           {number("intra_gbps", true, 0, intra),
            number("uplink_gbps", true, 0, uplink),
            number("host_gbps", false, 0, host),
            number("hop_latency_us", false, 0, lat_us)}) {
        if (!err.empty()) return fail(ErrorCode::BadField, std::move(err));
      }
      spec.intra_bw = gbps(intra);
      spec.uplink_bw = gbps(uplink);
      spec.host_bw = host == 0 ? 0 : gbps(host);
      spec.hop_latency_s = lat_us * 1e-6;
      out.links = Interconnect::hierarchical(spec);
    }
  } catch (const ConfigError& e) {
    return fail(ErrorCode::BadField, strformat("links: %s", e.what()));
  }
  return out;
}

/// Canonical JSON spelling of a topology (the response echo).
[[nodiscard]] json::Value links_json(const Interconnect& links) {
  json::Object o;
  o.set("shape", std::string(to_string(links.shape())));
  switch (links.shape()) {
    case LinkShape::Uniform:
      o.set("bw_gbps", links.base_bw() / 1e9);
      break;
    case LinkShape::Mixed: {
      o.set("bw_gbps", links.base_bw() / 1e9);
      json::Array overrides;
      for (const Interconnect::Override& ov : links.overrides()) {
        json::Object e;
        e.set("acc", ov.first);
        e.set("bw_gbps", ov.second / 1e9);
        overrides.push_back(json::Value(std::move(e)));
      }
      o.set("overrides", std::move(overrides));
      break;
    }
    case LinkShape::Hierarchical: {
      const Interconnect::HierarchicalSpec& h = links.hier();
      o.set("group_size", h.group_size);
      o.set("intra_gbps", h.intra_bw / 1e9);
      o.set("uplink_gbps", h.uplink_bw / 1e9);
      o.set("host_gbps", h.host_bw / 1e9);
      o.set("hop_latency_us", h.hop_latency_s * 1e6);
      break;
    }
  }
  return json::Value(std::move(o));
}

/// Strict "options" object parse into `out`, shared by both request
/// schemas. An empty `error` means success.
struct OptionsParse {
  ErrorCode code = ErrorCode::BadField;
  std::string error;
};

[[nodiscard]] OptionsParse parse_options_object(const json::Object& obj,
                                                PlanOptions& out) {
  for (const json::Object::Member& m : obj.members()) {
    // The wire spelling is the table's json_key, exactly — the kebab-case
    // CLI spelling is rejected here so the schema has one name per knob.
    const PlanOptionSpec* spec = nullptr;
    for (const PlanOptionSpec& s : plan_option_specs()) {
      if (m.key == s.json_key) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      return {ErrorCode::UnknownField,
              strformat("options.%s: unknown option", m.key.c_str())};
    }
    std::string spelled;
    switch (spec->kind) {
      case PlanOptionSpec::Kind::Bool:
        if (!m.value.is_bool()) {
          return {ErrorCode::BadField,
                  strformat("options.%s: expected a boolean", m.key.c_str())};
        }
        spelled = m.value.as_bool() ? "true" : "false";
        break;
      case PlanOptionSpec::Kind::Double: {
        if (!m.value.is_number()) {
          return {ErrorCode::BadField,
                  strformat("options.%s: expected a number", m.key.c_str())};
        }
        char buf[32];
        const auto [end, ec] =
            std::to_chars(buf, buf + sizeof(buf), m.value.as_number());
        H2H_ASSERT(ec == std::errc());
        spelled.assign(buf, end);
        break;
      }
      case PlanOptionSpec::Kind::Enum:
        if (!m.value.is_string()) {
          return {ErrorCode::BadField,
                  strformat("options.%s: expected one of %.*s", m.key.c_str(),
                            static_cast<int>(spec->values.size()),
                            spec->values.data())};
        }
        spelled = m.value.as_string();
        break;
    }
    if (std::optional<std::string> err = spec->set(out, spelled)) {
      return {ErrorCode::BadField,
              strformat("options.%s: %s", m.key.c_str(), err->c_str())};
    }
  }
  return {};
}

/// The canonical "options" echo: every knob at its effective value,
/// defaults included, unset optionals omitted.
[[nodiscard]] json::Object options_json(const PlanOptions& options) {
  json::Object out;
  for (const PlanOptionSpec& spec : plan_option_specs()) {
    json::Value v = option_value(spec, options);
    if (v.is_null()) continue;  // unset optional (time_budget_s)
    out.set(std::string(spec.json_key), std::move(v));
  }
  return out;
}

/// The "mapping" response object: seq-ordered layer placements plus fused
/// edges (shared by single-model and tenants responses).
[[nodiscard]] json::Value mapping_json(const ModelGraph& model,
                                       const Mapping& mapping,
                                       const LocalityPlan& plan,
                                       const SystemConfig& sys) {
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&mapping](LayerId l, LayerId r) {
    return mapping.seq_of(l) < mapping.seq_of(r);
  });
  json::Array layers;
  for (const LayerId id : order) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    json::Object entry;
    entry.set("layer", model.layer(id).name);
    entry.set("acc", sys.spec(mapping.acc_of(id)).name);
    if (plan.pinned(id)) entry.set("pinned", true);
    layers.push_back(json::Value(std::move(entry)));
  }
  json::Array fused;
  for (const LayerId id : order) {
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (!plan.fused_in(id, i)) continue;
      json::Object edge;
      edge.set("from", model.layer(preds[i]).name);
      edge.set("to", model.layer(id).name);
      fused.push_back(json::Value(std::move(edge)));
    }
  }
  json::Object out;
  out.set("layers", std::move(layers));
  out.set("fused", std::move(fused));
  return json::Value(std::move(out));
}

/// Shared head of both schemas: "id" then "schema_version", every later
/// error echoing the id. Returns nullopt on success.
template <typename Fail>
[[nodiscard]] std::optional<WireError> parse_head(const json::Object& root,
                                                  std::string& id,
                                                  const Fail& fail) {
  if (const json::Value* v = root.find("id")) {
    if (!v->is_string()) {
      return WireError{ErrorCode::BadField, "id: expected a string", {}};
    }
    id = v->as_string();
  }
  const json::Value* version = root.find("schema_version");
  if (version == nullptr) {
    return fail(ErrorCode::SchemaVersion,
                strformat("missing schema_version (this server speaks %d)",
                          kSchemaVersion));
  }
  if (!version->is_number() ||
      version->as_number() != static_cast<double>(kSchemaVersion)) {
    return fail(ErrorCode::SchemaVersion,
                strformat("unsupported schema_version (this server speaks %d)",
                          kSchemaVersion));
  }
  return std::nullopt;
}

/// The single-model request schema (everything after the line-level JSON
/// checks, which the public entry points share).
[[nodiscard]] std::variant<WireRequest, WireError> parse_single(
    const json::Object& root) {
  WireRequest req;
  const auto fail = [&req](ErrorCode code, std::string message) {
    return WireError{code, std::move(message), req.id};
  };
  if (std::optional<WireError> err = parse_head(root, req.id, fail)) {
    return *err;
  }

  const json::Value* model = root.find("model");
  if (model == nullptr || !model->is_string()) {
    return fail(ErrorCode::BadField,
                "model: expected a string zoo key (required)");
  }
  const std::optional<ZooModel> zoo = zoo_model_by_key(model->as_string());
  if (!zoo) {
    return fail(ErrorCode::UnknownModel,
                strformat("unknown model '%s' (known: %s)",
                          model->as_string().c_str(),
                          known_zoo_keys().c_str()));
  }
  req.model = *zoo;

  if (const json::Value* bw = root.find("bw_gbps")) {
    if (root.find("links") != nullptr) {
      return fail(ErrorCode::BadField,
                  "bw_gbps: conflicts with links (the topology's base "
                  "bandwidth is the scalar view; send one or the other)");
    }
    if (!bw->is_number() || !(bw->as_number() > 0)) {
      return fail(ErrorCode::BadField, "bw_gbps: expected a positive number");
    }
    req.bw_gbps = bw->as_number();
  }

  if (const json::Value* links = root.find("links")) {
    if (!links->is_object()) {
      return fail(ErrorCode::BadField, "links: expected an object");
    }
    LinksParse parsed_links = parse_links_object(links->as_object());
    if (!parsed_links.links) {
      return fail(parsed_links.code, std::move(parsed_links.error));
    }
    req.links = std::move(parsed_links.links);
    req.bw_gbps = req.links->base_bw() / 1e9;
  }

  if (const json::Value* batch = root.find("batch")) {
    const double b = batch->is_number() ? batch->as_number() : -1;
    if (b < 1 || b > kMaxBatch || b != std::floor(b)) {
      return fail(ErrorCode::BadField,
                  strformat("batch: expected an integer in [1, %u]",
                            kMaxBatch));
    }
    req.batch = static_cast<std::uint32_t>(b);
  }

  if (const json::Value* options = root.find("options")) {
    if (!options->is_object()) {
      return fail(ErrorCode::BadField, "options: expected an object");
    }
    OptionsParse op = parse_options_object(options->as_object(), req.options);
    if (!op.error.empty()) return fail(op.code, std::move(op.error));
  }

  if (const json::Value* emit = root.find("emit")) {
    if (!emit->is_object()) {
      return fail(ErrorCode::BadField, "emit: expected an object");
    }
    for (const json::Object::Member& m : emit->as_object().members()) {
      bool* target = nullptr;
      if (m.key == "mapping") {
        target = &req.emit_mapping;
      } else if (m.key == "steps") {
        target = &req.emit_steps;
      } else if (m.key == "timing") {
        target = &req.emit_timing;
      } else {
        return fail(ErrorCode::UnknownField,
                    strformat("emit.%s: unknown field (valid: mapping, "
                              "steps, timing)",
                              m.key.c_str()));
      }
      if (!m.value.is_bool()) {
        return fail(ErrorCode::BadField,
                    strformat("emit.%s: expected a boolean", m.key.c_str()));
      }
      *target = m.value.as_bool();
    }
  }

  for (const json::Object::Member& m : root.members()) {
    if (m.key != "schema_version" && m.key != "id" && m.key != "model" &&
        m.key != "bw_gbps" && m.key != "links" && m.key != "batch" &&
        m.key != "options" && m.key != "emit") {
      return fail(ErrorCode::UnknownField,
                  strformat("%s: unknown field", m.key.c_str()));
    }
  }
  return req;
}

/// The multi-tenant request schema (root "tenants" array; protocol.h).
[[nodiscard]] std::variant<WireTenantsRequest, WireError> parse_tenants(
    const json::Object& root) {
  WireTenantsRequest req;
  const auto fail = [&req](ErrorCode code, std::string message) {
    return WireError{code, std::move(message), req.id};
  };
  if (std::optional<WireError> err = parse_head(root, req.id, fail)) {
    return *err;
  }

  const json::Value* tenants = root.find("tenants");
  if (tenants == nullptr || !tenants->is_array() ||
      tenants->as_array().empty()) {
    return fail(ErrorCode::BadField,
                "tenants: expected a non-empty array (required)");
  }
  for (const json::Value& entry : tenants->as_array()) {
    if (!entry.is_object()) {
      return fail(ErrorCode::BadField,
                  "tenants: expected objects with name, model");
    }
    const json::Object& t = entry.as_object();
    for (const json::Object::Member& m : t.members()) {
      if (m.key != "name" && m.key != "model" && m.key != "slo_s" &&
          m.key != "priority" && m.key != "caps") {
        return fail(ErrorCode::UnknownField,
                    strformat("tenants.%s: unknown field", m.key.c_str()));
      }
    }
    TenantRequest tenant;
    const json::Value* name = t.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty() ||
        name->as_string().find('/') != std::string::npos) {
      return fail(ErrorCode::BadField,
                  "tenants.name: expected a non-empty string without '/' "
                  "(required)");
    }
    tenant.name = name->as_string();
    for (const TenantRequest& seen : req.tenants) {
      if (seen.name == tenant.name) {
        return fail(ErrorCode::BadField,
                    strformat("tenants.name: duplicate tenant name '%s'",
                              tenant.name.c_str()));
      }
    }
    const json::Value* model = t.find("model");
    if (model == nullptr || !model->is_string()) {
      return fail(ErrorCode::BadField,
                  "tenants.model: expected a string zoo key (required)");
    }
    const std::optional<ZooModel> zoo = zoo_model_by_key(model->as_string());
    if (!zoo) {
      return fail(ErrorCode::UnknownModel,
                  strformat("unknown model '%s' (known: %s)",
                            model->as_string().c_str(),
                            known_zoo_keys().c_str()));
    }
    tenant.model = *zoo;
    if (const json::Value* slo = t.find("slo_s")) {
      if (!slo->is_number() || !(slo->as_number() > 0)) {
        return fail(ErrorCode::BadField,
                    "tenants.slo_s: expected a positive number");
      }
      tenant.slo_s = slo->as_number();
    }
    if (const json::Value* prio = t.find("priority")) {
      const double p = prio->is_number() ? prio->as_number() : -1;
      if (p < 1 || p > 1e6 || p != std::floor(p)) {
        return fail(ErrorCode::BadField,
                    "tenants.priority: expected an integer in [1, 1000000]");
      }
      tenant.priority = static_cast<std::uint32_t>(p);
    }
    if (const json::Value* caps = t.find("caps")) {
      if (!caps->is_string()) {
        return fail(ErrorCode::BadField,
                    "tenants.caps: expected a capability-spec string");
      }
      try {
        tenant.required_caps = parse_caps_spec(caps->as_string());
      } catch (const ConfigError& e) {
        return fail(ErrorCode::BadField,
                    strformat("tenants.caps: %s", e.what()));
      }
    }
    req.tenants.push_back(std::move(tenant));
  }

  if (const json::Value* bw = root.find("bw_gbps")) {
    if (!bw->is_number() || !(bw->as_number() > 0)) {
      return fail(ErrorCode::BadField, "bw_gbps: expected a positive number");
    }
    req.bw_gbps = bw->as_number();
  }

  if (const json::Value* options = root.find("options")) {
    if (!options->is_object()) {
      return fail(ErrorCode::BadField, "options: expected an object");
    }
    OptionsParse op = parse_options_object(options->as_object(), req.options);
    if (!op.error.empty()) return fail(op.code, std::move(op.error));
  }

  if (const json::Value* rounds = root.find("max_rounds")) {
    const double r = rounds->is_number() ? rounds->as_number() : -1;
    if (r < 0 || r > kMaxRounds || r != std::floor(r)) {
      return fail(ErrorCode::BadField,
                  strformat("max_rounds: expected an integer in [0, %u]",
                            kMaxRounds));
    }
    req.max_rounds = static_cast<std::uint32_t>(r);
  }
  if (const json::Value* v = root.find("steal_round")) {
    if (!v->is_bool()) {
      return fail(ErrorCode::BadField, "steal_round: expected a boolean");
    }
    req.steal_round = v->as_bool();
  }
  if (const json::Value* v = root.find("require_slos")) {
    if (!v->is_bool()) {
      return fail(ErrorCode::BadField, "require_slos: expected a boolean");
    }
    req.require_slos = v->as_bool();
  }

  if (const json::Value* emit = root.find("emit")) {
    if (!emit->is_object()) {
      return fail(ErrorCode::BadField, "emit: expected an object");
    }
    for (const json::Object::Member& m : emit->as_object().members()) {
      if (m.key != "mapping") {
        return fail(ErrorCode::UnknownField,
                    strformat("emit.%s: unknown field (valid: mapping)",
                              m.key.c_str()));
      }
      if (!m.value.is_bool()) {
        return fail(ErrorCode::BadField,
                    strformat("emit.%s: expected a boolean", m.key.c_str()));
      }
      req.emit_mapping = m.value.as_bool();
    }
  }

  for (const json::Object::Member& m : root.members()) {
    if (m.key != "schema_version" && m.key != "id" && m.key != "tenants" &&
        m.key != "bw_gbps" && m.key != "options" && m.key != "max_rounds" &&
        m.key != "steal_round" && m.key != "require_slos" &&
        m.key != "emit") {
      return fail(ErrorCode::UnknownField,
                  strformat("%s: unknown field", m.key.c_str()));
    }
  }
  return req;
}

/// The live-repair request schema (root "repair" object; protocol.h).
/// Shares the single-model session-key fields (model/bw_gbps/links/batch)
/// and options/emit with parse_single, spelled identically.
[[nodiscard]] std::variant<WireRepairRequest, WireError> parse_repair(
    const json::Object& root) {
  WireRepairRequest req;
  const auto fail = [&req](ErrorCode code, std::string message) {
    return WireError{code, std::move(message), req.id};
  };
  if (std::optional<WireError> err = parse_head(root, req.id, fail)) {
    return *err;
  }

  const json::Value* repair = root.find("repair");
  H2H_ASSERT(repair != nullptr);  // parse_any_request dispatched on it
  if (!repair->is_object()) {
    return fail(ErrorCode::BadField, "repair: expected an object");
  }
  const json::Object& ev = repair->as_object();
  for (const json::Object::Member& m : ev.members()) {
    if (m.key != "event" && m.key != "acc" && m.key != "scale") {
      return fail(ErrorCode::UnknownField,
                  strformat("repair.%s: unknown field (valid: event, acc, "
                            "scale)",
                            m.key.c_str()));
    }
  }
  const json::Value* kind = ev.find("event");
  if (kind == nullptr || !kind->is_string()) {
    return fail(ErrorCode::BadField,
                "repair.event: expected a string fault kind (required)");
  }
  const std::optional<FaultKind> parsed_kind =
      parse_fault_kind(kind->as_string());
  if (!parsed_kind) {
    return fail(ErrorCode::BadField,
                strformat("repair.event: unknown fault kind '%s' (valid: "
                          "acc_lost, acc_returned, link_degraded, "
                          "link_restored, spec_derated)",
                          kind->as_string().c_str()));
  }
  req.event.kind = *parsed_kind;
  const json::Value* acc = ev.find("acc");
  if (acc == nullptr || !acc->is_number() || acc->as_number() < 0 ||
      acc->as_number() != std::floor(acc->as_number())) {
    return fail(ErrorCode::BadField,
                "repair.acc: expected a non-negative integer (required)");
  }
  req.event.acc = AccId{static_cast<std::uint32_t>(acc->as_number())};
  const json::Value* scale = ev.find("scale");
  if (req.event.has_scale()) {
    if (scale == nullptr || !scale->is_number() ||
        !(scale->as_number() > 0) || scale->as_number() > 1) {
      return fail(ErrorCode::BadField,
                  strformat("repair.scale: expected a number in (0, 1] "
                            "(required for %.*s)",
                            static_cast<int>(to_string(req.event.kind).size()),
                            to_string(req.event.kind).data()));
    }
    req.event.scale = scale->as_number();
  } else if (scale != nullptr) {
    return fail(ErrorCode::BadField,
                strformat("repair.scale: not allowed for %.*s",
                          static_cast<int>(to_string(req.event.kind).size()),
                          to_string(req.event.kind).data()));
  }

  const json::Value* model = root.find("model");
  if (model == nullptr || !model->is_string()) {
    return fail(ErrorCode::BadField,
                "model: expected a string zoo key (required)");
  }
  const std::optional<ZooModel> zoo = zoo_model_by_key(model->as_string());
  if (!zoo) {
    return fail(ErrorCode::UnknownModel,
                strformat("unknown model '%s' (known: %s)",
                          model->as_string().c_str(),
                          known_zoo_keys().c_str()));
  }
  req.model = *zoo;

  if (const json::Value* bw = root.find("bw_gbps")) {
    if (root.find("links") != nullptr) {
      return fail(ErrorCode::BadField,
                  "bw_gbps: conflicts with links (the topology's base "
                  "bandwidth is the scalar view; send one or the other)");
    }
    if (!bw->is_number() || !(bw->as_number() > 0)) {
      return fail(ErrorCode::BadField, "bw_gbps: expected a positive number");
    }
    req.bw_gbps = bw->as_number();
  }
  if (const json::Value* links = root.find("links")) {
    if (!links->is_object()) {
      return fail(ErrorCode::BadField, "links: expected an object");
    }
    LinksParse parsed_links = parse_links_object(links->as_object());
    if (!parsed_links.links) {
      return fail(parsed_links.code, std::move(parsed_links.error));
    }
    req.links = std::move(parsed_links.links);
    req.bw_gbps = req.links->base_bw() / 1e9;
  }
  if (const json::Value* batch = root.find("batch")) {
    const double b = batch->is_number() ? batch->as_number() : -1;
    if (b < 1 || b > kMaxBatch || b != std::floor(b)) {
      return fail(ErrorCode::BadField,
                  strformat("batch: expected an integer in [1, %u]",
                            kMaxBatch));
    }
    req.batch = static_cast<std::uint32_t>(b);
  }
  if (const json::Value* options = root.find("options")) {
    if (!options->is_object()) {
      return fail(ErrorCode::BadField, "options: expected an object");
    }
    OptionsParse op = parse_options_object(options->as_object(), req.options);
    if (!op.error.empty()) return fail(op.code, std::move(op.error));
  }
  if (const json::Value* ratio = root.find("fallback_ratio")) {
    if (!ratio->is_number() || ratio->as_number() < 0) {
      return fail(ErrorCode::BadField,
                  "fallback_ratio: expected a non-negative number");
    }
    req.fallback_ratio = ratio->as_number();
  }
  if (const json::Value* emit = root.find("emit")) {
    if (!emit->is_object()) {
      return fail(ErrorCode::BadField, "emit: expected an object");
    }
    for (const json::Object::Member& m : emit->as_object().members()) {
      bool* target = nullptr;
      if (m.key == "mapping") {
        target = &req.emit_mapping;
      } else if (m.key == "timing") {
        target = &req.emit_timing;
      } else {
        return fail(ErrorCode::UnknownField,
                    strformat("emit.%s: unknown field (valid: mapping, "
                              "timing)",
                              m.key.c_str()));
      }
      if (!m.value.is_bool()) {
        return fail(ErrorCode::BadField,
                    strformat("emit.%s: expected a boolean", m.key.c_str()));
      }
      *target = m.value.as_bool();
    }
  }

  for (const json::Object::Member& m : root.members()) {
    if (m.key != "schema_version" && m.key != "id" && m.key != "repair" &&
        m.key != "model" && m.key != "bw_gbps" && m.key != "links" &&
        m.key != "batch" && m.key != "options" &&
        m.key != "fallback_ratio" && m.key != "emit") {
      return fail(ErrorCode::UnknownField,
                  strformat("%s: unknown field", m.key.c_str()));
    }
  }
  return req;
}

}  // namespace

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::ParseError:
      return "parse_error";
    case ErrorCode::SchemaVersion:
      return "schema_version";
    case ErrorCode::UnknownField:
      return "unknown_field";
    case ErrorCode::BadField:
      return "bad_field";
    case ErrorCode::UnknownModel:
      return "unknown_model";
    case ErrorCode::PlanFailed:
      return "plan_failed";
    case ErrorCode::InfeasibleCapability:
      return "infeasible_capability";
    case ErrorCode::SloViolated:
      return "slo_violated";
    case ErrorCode::UnknownAcc:
      return "unknown_acc";
    case ErrorCode::NoPriorPlan:
      return "no_prior_plan";
    case ErrorCode::InfeasibleRepair:
      return "infeasible_repair";
  }
  return "unknown";
}

std::variant<WireRequest, WireError> parse_request(std::string_view line) {
  const json::ParseResult parsed = json::parse(line);
  if (!parsed.value) {
    return WireError{ErrorCode::ParseError,
                     strformat("byte %zu: %s", parsed.offset,
                               parsed.error.c_str()),
                     {}};
  }
  if (!parsed.value->is_object()) {
    return WireError{ErrorCode::ParseError, "request must be a JSON object",
                     {}};
  }
  return parse_single(parsed.value->as_object());
}

std::variant<WireRequest, WireTenantsRequest, WireRepairRequest, WireError>
parse_any_request(std::string_view line) {
  const json::ParseResult parsed = json::parse(line);
  if (!parsed.value) {
    return WireError{ErrorCode::ParseError,
                     strformat("byte %zu: %s", parsed.offset,
                               parsed.error.c_str()),
                     {}};
  }
  if (!parsed.value->is_object()) {
    return WireError{ErrorCode::ParseError, "request must be a JSON object",
                     {}};
  }
  const json::Object& root = parsed.value->as_object();
  if (root.find("tenants") != nullptr) {
    std::variant<WireTenantsRequest, WireError> out = parse_tenants(root);
    if (WireError* err = std::get_if<WireError>(&out)) return std::move(*err);
    return std::move(std::get<WireTenantsRequest>(out));
  }
  if (root.find("repair") != nullptr) {
    std::variant<WireRepairRequest, WireError> out = parse_repair(root);
    if (WireError* err = std::get_if<WireError>(&out)) return std::move(*err);
    return std::move(std::get<WireRepairRequest>(out));
  }
  std::variant<WireRequest, WireError> out = parse_single(root);
  if (WireError* err = std::get_if<WireError>(&out)) return std::move(*err);
  return std::move(std::get<WireRequest>(out));
}

PlanRequest to_plan_request(const WireRequest& request) {
  PlanRequest plan = PlanRequest::zoo(request.model, request.bw_gbps * 1e9,
                                      request.batch);
  plan.options = request.options;
  plan.links = request.links;  // bw_acc is then only a key component
  return plan;
}

std::string write_response(const WireRequest& request,
                           const PlanResponse& response,
                           const ModelGraph& model, const SystemConfig& sys) {
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!request.id.empty()) root.set("id", request.id);
  root.set("ok", true);
  root.set("model", zoo_info(request.model).key);
  root.set("bw_gbps", request.bw_gbps);
  // Canonical topology echo, only for links requests — scalar responses
  // keep their exact pre-topology bytes (pinned by the CI fixtures).
  if (request.links) root.set("links", links_json(*request.links));
  root.set("batch", request.batch == 0 ? 1u : request.batch);

  // Echo every knob at its canonical value so a response is a complete
  // record of what was planned, defaults included.
  root.set("options", options_json(request.options));

  const ScheduleResult& fin = response.final_result();
  root.set("latency_s", fin.latency);
  root.set("energy_j", fin.energy.total());
  root.set("comp_ratio", fin.comp_ratio());
  root.set("stopped_on_budget", response.stopped_on_budget);

  if (request.emit_steps) {
    json::Array steps;
    for (const StepSnapshot& step : response.steps) {
      json::Object s;
      s.set("name", step.name);
      s.set("latency_s", step.result.latency);
      s.set("energy_j", step.result.energy.total());
      steps.push_back(json::Value(std::move(s)));
    }
    root.set("steps", std::move(steps));
  }

  if (request.emit_mapping) {
    root.set("mapping",
             mapping_json(model, response.mapping, response.plan, sys));
  }

  if (request.emit_timing) {
    json::Object timing;
    timing.set("warm", response.warm);
    timing.set("setup_s", response.setup_seconds);
    timing.set("search_s", response.search_seconds);
    root.set("timing", std::move(timing));
  }
  return json::dump(json::Value(std::move(root)));
}

std::string write_tenants_response(const WireTenantsRequest& request,
                                   const CoMapResult& result,
                                   const SystemConfig& sys) {
  H2H_EXPECTS(result.tenants.size() == request.tenants.size());
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!request.id.empty()) root.set("id", request.id);
  root.set("ok", true);

  // Canonical tenant echo merged with the per-tenant verdict, in request
  // (= union declaration) order. No-SLO tenants omit slo_s/slack_s rather
  // than carry a non-JSON infinity.
  json::Array tenants;
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    const TenantRequest& t = request.tenants[i];
    const TenantOutcome& out = result.tenants[i];
    json::Object entry;
    entry.set("name", out.name);
    entry.set("model", zoo_info(*t.model).key);
    if (t.has_slo()) entry.set("slo_s", t.slo_s);
    entry.set("priority", out.priority);
    if (t.required_caps != 0) entry.set("caps", format_caps(t.required_caps));
    entry.set("solo_latency_s", out.solo_latency_s);
    entry.set("seq_latency_s", out.seq_latency_s);
    entry.set("latency_s", out.latency_s);
    if (t.has_slo()) entry.set("slack_s", out.slack_s);
    entry.set("met", out.met);
    tenants.push_back(json::Value(std::move(entry)));
  }
  root.set("tenants", std::move(tenants));

  root.set("bw_gbps", request.bw_gbps);
  root.set("options", options_json(request.options));
  root.set("max_rounds", request.max_rounds);
  root.set("steal_round", request.steal_round);
  root.set("require_slos", request.require_slos);

  root.set("makespan_s", result.schedule.latency);
  root.set("energy_j", result.schedule.energy.total());
  root.set("violation_s", result.violation_s);
  root.set("seq_makespan_s", result.seq_makespan_s);
  root.set("seq_violation_s", result.seq_violation_s);
  root.set("rounds", result.rounds);
  root.set("steal_ran", result.steal_ran);
  root.set("all_slos_met", result.all_slos_met);

  if (request.emit_mapping) {
    root.set("mapping",
             mapping_json(result.model, result.mapping, result.plan, sys));
  }
  return json::dump(json::Value(std::move(root)));
}

std::string write_repair_response(const WireRepairRequest& request,
                                  const RepairResult& result,
                                  const ModelGraph& model,
                                  const SystemConfig& sys) {
  H2H_EXPECTS(result.outcome == RepairOutcome::Repaired);
  H2H_EXPECTS(result.response.has_value());
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!request.id.empty()) root.set("id", request.id);
  root.set("ok", true);
  root.set("model", zoo_info(request.model).key);
  root.set("bw_gbps", request.bw_gbps);
  if (request.links) root.set("links", links_json(*request.links));
  root.set("batch", request.batch == 0 ? 1u : request.batch);
  root.set("options", options_json(request.options));
  root.set("fallback_ratio", request.fallback_ratio);

  json::Object event;
  event.set("event", std::string(to_string(result.event.kind)));
  event.set("acc", result.event.acc.value);
  if (result.event.has_scale()) event.set("scale", result.event.scale);
  root.set("event", std::move(event));

  root.set("outcome", std::string(to_string(result.outcome)));
  root.set("pre_latency_s", result.pre_latency_s);
  // The faulted (repair-nothing) latency is +inf when the old mapping no
  // longer runs at all; JSON has no infinity, so the field is omitted.
  if (std::isfinite(result.faulted_latency_s)) {
    root.set("faulted_latency_s", result.faulted_latency_s);
  }
  root.set("post_latency_s", result.post_latency_s);
  if (result.scratch_latency_s > 0) {
    root.set("scratch_latency_s", result.scratch_latency_s);
  }
  root.set("used_fallback", result.used_fallback);
  root.set("cone_layers", static_cast<unsigned>(result.cone_layers));
  root.set("layers_moved", static_cast<unsigned>(result.layers_moved));
  root.set("weight_bytes_moved",
           static_cast<double>(result.weight_bytes_moved));
  json::Array migrations;
  for (const Migration& m : result.migrations) {
    json::Object entry;
    entry.set("layer", model.layer(m.layer).name);
    entry.set("from", sys.spec(m.from).name);
    entry.set("to", sys.spec(m.to).name);
    entry.set("weight_bytes", static_cast<double>(m.weight_bytes));
    migrations.push_back(json::Value(std::move(entry)));
  }
  root.set("migrations", std::move(migrations));

  if (request.emit_mapping) {
    root.set("mapping", mapping_json(model, result.response->mapping,
                                     result.response->plan, sys));
  }
  if (request.emit_timing) {
    json::Object timing;
    timing.set("repair_s", result.repair_seconds);
    root.set("timing", std::move(timing));
  }
  return json::dump(json::Value(std::move(root)));
}

std::string write_error(const WireError& error) {
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!error.id.empty()) root.set("id", error.id);
  root.set("ok", false);
  json::Object detail;
  detail.set("code", to_string(error.code));
  detail.set("message", error.message);
  root.set("error", std::move(detail));
  return json::dump(json::Value(std::move(root)));
}

}  // namespace h2h::serve
