// Emitters that print the paper's tables/figures from StepSeries sweeps.
// One function per artifact; bench binaries are thin wrappers around these.
#pragma once

#include <ostream>
#include <span>

#include "report/experiment.h"

namespace h2h {

/// Fig. 4: per-model latency (s) and energy (J) across the four H2H steps,
/// one block per bandwidth setting, plus the headline reduction summary.
void print_fig4(std::span<const StepSeries> sweep, std::ostream& out);

/// Table 4: absolute latency for steps 1-2 and step-3/step-4 latency as a
/// percentage of step 2, per bandwidth x model.
void print_table4(std::span<const StepSeries> sweep, std::ostream& out);

/// Fig. 5(a): communication/computation ratio at bandwidth Low-, baseline
/// (after step 2) vs H2H (after step 4).
void print_fig5a(std::span<const StepSeries> sweep, std::ostream& out);

/// Fig. 5(b): H2H search time per model and bandwidth.
void print_fig5b(std::span<const StepSeries> sweep, std::ostream& out);

/// Machine-readable dump of the whole sweep.
void write_sweep_csv(std::span<const StepSeries> sweep, std::ostream& out);

}  // namespace h2h
