#include "system/energy.h"

// EnergyBreakdown is header-only; the per-layer accumulation lives in
// simulator.cpp where all byte flows are known. This TU anchors the target.

namespace h2h {
namespace {
// intentionally empty
}  // namespace
}  // namespace h2h
