// Mapping and locality state shared by the H2H passes and the simulator.
//
// Mapping: layer -> accelerator assignment plus a global execution-priority
// sequence (the order step 1 mapped the layers in, which is topological).
// Each accelerator executes its layers FIFO in sequence order — the paper's
// per-accelerator computation graphs G_Acc_i.
//
// LocalityPlan: which layers' weights are pinned in local DRAM (step 2) and
// which edges are activation-fused (step 3). Steps 2-4 recompute this plan;
// the simulator consumes it.
#pragma once

#include <vector>

#include "model/model_graph.h"
#include "system/system_config.h"

namespace h2h {

class Mapping {
 public:
  /// All layers unassigned except Input layers, which live on the host.
  explicit Mapping(const ModelGraph& model);

  [[nodiscard]] std::size_t size() const noexcept { return assignment_.size(); }

  [[nodiscard]] bool is_assigned(LayerId id) const {
    H2H_EXPECTS(id.value < assignment_.size());
    return assignment_[id.value].valid();
  }
  [[nodiscard]] AccId acc_of(LayerId id) const {
    H2H_EXPECTS(is_assigned(id));
    return assignment_[id.value];
  }
  [[nodiscard]] std::uint32_t seq_of(LayerId id) const {
    H2H_EXPECTS(is_assigned(id));
    return seq_[id.value];
  }

  /// First-time assignment with the next execution priority.
  void assign(LayerId id, AccId acc);

  /// Step-4 remapping: change the accelerator, keep the priority.
  void reassign(LayerId id, AccId acc);

  [[nodiscard]] bool complete() const noexcept;

  /// Per-accelerator FIFO queues (layers sorted by sequence).
  [[nodiscard]] std::vector<std::vector<LayerId>> acc_queues(
      const SystemConfig& sys) const;

  /// Layers mapped to `acc`, sorted by sequence.
  [[nodiscard]] std::vector<LayerId> layers_on(AccId acc) const;

  /// Distinct accelerators that have at least one layer, ascending.
  [[nodiscard]] std::vector<AccId> used_accelerators() const;

  /// Throws ConfigError if any layer sits on an accelerator that does not
  /// support its kind, or a non-Input layer is on the host, or an Input
  /// layer is not on the host. `model` must be the graph this mapping was
  /// built for (the mapping stores no back-pointer so that result structs
  /// stay freely movable).
  void validate(const ModelGraph& model, const SystemConfig& sys) const;

 private:
  std::vector<AccId> assignment_;
  std::vector<std::uint32_t> seq_;
  std::uint32_t next_seq_ = 0;
};

class LocalityPlan {
 public:
  /// Zero-locality plan (step 1 semantics): nothing pinned, nothing fused.
  explicit LocalityPlan(const ModelGraph& model);

  [[nodiscard]] bool pinned(LayerId id) const {
    H2H_EXPECTS(id.value < pinned_.size());
    return pinned_[id.value];
  }
  void set_pinned(LayerId id, bool value) {
    H2H_EXPECTS(id.value < pinned_.size());
    pinned_[id.value] = value;
  }

  /// Fusion flag of the in-edge `pred_index` (index into graph.preds(id)).
  [[nodiscard]] bool fused_in(LayerId id, std::size_t pred_index) const {
    H2H_EXPECTS(id.value < fused_in_.size());
    H2H_EXPECTS(pred_index < fused_in_[id.value].size());
    return fused_in_[id.value][pred_index];
  }
  void set_fused_in(LayerId id, std::size_t pred_index, bool value) {
    H2H_EXPECTS(id.value < fused_in_.size());
    H2H_EXPECTS(pred_index < fused_in_[id.value].size());
    fused_in_[id.value][pred_index] = value;
  }

  /// Fusion flag of the edge producer -> consumer (looked up by scanning the
  /// consumer's predecessor list).
  [[nodiscard]] bool edge_fused(const ModelGraph& model, LayerId producer,
                                LayerId consumer) const;

  /// Clear all fusion flags (pins are kept).
  void clear_fusion();
  /// Clear all pins (fusion flags are kept).
  void clear_pins();

  /// Local DRAM bytes committed on each accelerator (pinned weights plus
  /// fused activation buffers). Maintained by the locality passes.
  [[nodiscard]] Bytes used_dram(AccId acc) const;
  void set_used_dram(AccId acc, Bytes bytes);
  void ensure_acc_count(std::size_t count);

  [[nodiscard]] std::size_t pinned_count() const noexcept;
  [[nodiscard]] std::size_t fused_edge_count() const noexcept;

 private:
  std::vector<bool> pinned_;
  std::vector<std::vector<bool>> fused_in_;
  std::vector<Bytes> used_dram_;
};

}  // namespace h2h
