// The 12 state-of-the-art FPGA DNN accelerators of the paper's Table 3.
//
// Every entry's throughput/memory/energy numbers are calibrated estimates
// reconstructed from the cited publication (peak ops, board, DRAM
// generation); see the per-entry comments in catalog.cpp and DESIGN.md §2
// for the substitution rationale. What the mapping algorithm needs — the
// relative ordering of designs per layer kind and the 512 MiB..8 GiB local
// DRAM range — is preserved.
#pragma once

#include <vector>

#include "accel/accelerator_model.h"

namespace h2h {

/// Table 3, in paper order: J.Z, C.Z, W.J, J.Q, A.C, Y.G, T.M, A.P, X.W,
/// S.H, X.Z, B.L.
[[nodiscard]] std::vector<AcceleratorSpec> standard_catalog();

/// Analytical models for the full standard catalog.
[[nodiscard]] std::vector<AcceleratorPtr> build_standard_accelerators();

/// A row-stationary (Eyeriss-like) spec. Not part of Table 3; used by tests
/// and the custom_accelerator example to demonstrate the plug-in interface.
[[nodiscard]] AcceleratorSpec eyeriss_like_spec();

}  // namespace h2h
