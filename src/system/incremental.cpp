#include "system/incremental.h"

#include <algorithm>

namespace h2h {

namespace {
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
}  // namespace

void IncrementalSchedule::reset(const Mapping& m, const LocalityPlan& plan) {
  const ModelGraph& model = sim_->model();
  const SystemConfig& sys = sim_->sys();
  H2H_EXPECTS(m.complete());
  H2H_EXPECTS(!journaling_);

  timings_.assign(model.layer_count(), LayerTiming{});
  queues_ = m.acc_queues(sys);
  pos_.assign(model.layer_count(), kNoPos);
  acc_.assign(model.layer_count(), AccId{});
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    for (std::uint32_t i = 0; i < queues_[q].size(); ++i) {
      pos_[queues_[q][i].value] = i;
      acc_[queues_[q][i].value] = AccId{q};
    }
  }
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) acc_[id.value] = AccId::host();
  }
  queued_stamp_.assign(model.layer_count(), 0);
  refreshed_stamp_.assign(model.layer_count(), 0);
  stamp_ = 0;
  saved_stamp_.assign(model.layer_count(), 0);
  save_epoch_ = 0;
  heap_.clear();

  // Initial full timing in sequence order.
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) < m.seq_of(rhs);
  });
  std::vector<double> acc_free(sys.accelerator_count(), 0.0);
  for (const LayerId id : order) {
    LayerTiming t = sim_->layer_components(id, m, plan);
    if (!acc_[id.value].is_host()) {
      double ready = 0.0;
      for (const LayerId p : model.graph().preds(id))
        ready = std::max(ready, timings_[p.value].finish);
      t.start = std::max(ready, acc_free[acc_[id.value].value]);
      t.finish = t.start + t.duration();
      acc_free[acc_[id.value].value] = t.finish;
    }
    timings_[id.value] = t;
  }
}

LayerId IncrementalSchedule::queue_prev(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  return p == 0 ? LayerId{} : queues_[a.value][p - 1];
}

LayerId IncrementalSchedule::queue_next(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  const auto& q = queues_[a.value];
  return p + 1 < q.size() ? q[p + 1] : LayerId{};
}

void IncrementalSchedule::save_timing(LayerId id) {
  if (!journaling_ || saved_stamp_[id.value] == save_epoch_) return;
  saved_stamp_[id.value] = save_epoch_;
  journal_timings_.emplace_back(id, timings_[id.value]);
}

void IncrementalSchedule::begin_retime() {
  heap_.clear();
  if (++stamp_ == 0) {  // stamp wrapped: invalidate all stale marks
    std::fill(queued_stamp_.begin(), queued_stamp_.end(), 0u);
    std::fill(refreshed_stamp_.begin(), refreshed_stamp_.end(), 0u);
    stamp_ = 1;
  }
}

void IncrementalSchedule::enqueue(const Mapping& m, LayerId id) {
  if (!id.valid() || queued_stamp_[id.value] == stamp_ ||
      sim_->model().layer(id).kind == LayerKind::Input)
    return;
  queued_stamp_[id.value] = stamp_;
  heap_.push_back(id);
  std::push_heap(heap_.begin(), heap_.end(), [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) > m.seq_of(rhs);
  });
}

void IncrementalSchedule::retime(const Mapping& m) {
  const ModelGraph& model = sim_->model();
  // Min-heap on sequence number: nodes are re-timed in execution order so
  // each node is processed at most a handful of times.
  const auto seq_greater = [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) > m.seq_of(rhs);
  };
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), seq_greater);
    const LayerId id = heap_.back();
    heap_.pop_back();
    queued_stamp_[id.value] = 0;
    ++retimes_;

    LayerTiming& t = timings_[id.value];
    double ready = 0.0;
    for (const LayerId p : model.graph().preds(id))
      ready = std::max(ready, timings_[p.value].finish);
    const LayerId prev = queue_prev(id);
    const double free_at = prev.valid() ? timings_[prev.value].finish : 0.0;
    const double start = std::max(ready, free_at);
    const double finish = start + t.duration();
    if (start == t.start && finish == t.finish) continue;  // cone stops here
    save_timing(id);
    t.start = start;
    t.finish = finish;
    for (const LayerId s : model.graph().succs(id)) enqueue(m, s);
    enqueue(m, queue_next(id));
  }
}

void IncrementalSchedule::refresh_one(const Mapping& m,
                                      const LocalityPlan& plan, LayerId id) {
  if (refreshed_stamp_[id.value] == stamp_) return;  // already this batch
  refreshed_stamp_[id.value] = stamp_;
  save_timing(id);
  LayerTiming& t = timings_[id.value];
  const LayerTiming fresh = sim_->layer_components(id, m, plan);
  t.t_in = fresh.t_in;
  t.t_weight = fresh.t_weight;
  t.t_compute = fresh.t_compute;
  t.t_out = fresh.t_out;
  t.t_host = fresh.t_host;
  t.t_local = fresh.t_local;
  t.host_bytes = fresh.host_bytes;
  t.local_bytes = fresh.local_bytes;
  enqueue(m, id);
}

void IncrementalSchedule::refresh_components(const Mapping& m,
                                             const LocalityPlan& plan,
                                             std::span<const LayerId> dirty) {
  begin_retime();
  for (const LayerId id : dirty) refresh_one(m, plan, id);
  retime(m);
}

LayerId IncrementalSchedule::relocate(const Mapping& m, LayerId node,
                                      AccId old_acc) {
  H2H_EXPECTS(!old_acc.is_host() && old_acc.value < queues_.size());
  const AccId new_acc = m.acc_of(node);
  H2H_EXPECTS(new_acc != old_acc);

  // Remove from the old queue.
  auto& oq = queues_[old_acc.value];
  const std::uint32_t old_pos = pos_[node.value];
  H2H_ASSERT(old_pos < oq.size() && oq[old_pos] == node);
  if (journaling_) journal_moves_.push_back({node, old_acc, old_pos, new_acc});
  oq.erase(oq.begin() + old_pos);
  for (std::uint32_t i = old_pos; i < oq.size(); ++i) pos_[oq[i].value] = i;
  const LayerId old_follower = old_pos < oq.size() ? oq[old_pos] : LayerId{};

  // Insert into the new queue by sequence.
  auto& nq = queues_[new_acc.value];
  const auto it = std::lower_bound(
      nq.begin(), nq.end(), node, [&m](LayerId lhs, LayerId rhs) {
        return m.seq_of(lhs) < m.seq_of(rhs);
      });
  const auto new_pos = static_cast<std::uint32_t>(it - nq.begin());
  nq.insert(it, node);
  for (std::uint32_t i = new_pos; i < nq.size(); ++i) pos_[nq[i].value] = i;
  acc_[node.value] = new_acc;
  return old_follower;
}

void IncrementalSchedule::apply_remap(const Mapping& m,
                                      const LocalityPlan& plan, LayerId node,
                                      AccId old_acc) {
  const AccId new_acc = m.acc_of(node);
  (void)relocate(m, node, old_acc);

  // Every layer on either accelerator may have changed transfer components
  // (the locality passes redistribute pins and fusion there). Refreshing
  // both queues also seeds the retime with the node itself and both queue
  // followers, which covers the displaced FIFO slots.
  begin_retime();
  for (const LayerId id : queues_[old_acc.value]) refresh_one(m, plan, id);
  for (const LayerId id : queues_[new_acc.value]) refresh_one(m, plan, id);
  retime(m);
}

void IncrementalSchedule::apply_remap(const Mapping& m,
                                      const LocalityPlan& plan, LayerId node,
                                      AccId old_acc,
                                      std::span<const LayerId> dirty) {
  const LayerId old_follower = relocate(m, node, old_acc);

  begin_retime();
  refresh_one(m, plan, node);
  for (const LayerId id : dirty) refresh_one(m, plan, id);
  // The displaced FIFO slots: components unchanged, start times may not be.
  enqueue(m, old_follower);
  enqueue(m, queue_next(node));
  retime(m);
}

void IncrementalSchedule::begin_journal() {
  H2H_EXPECTS(!journaling_);
  H2H_EXPECTS(!timings_.empty());  // reset() must have run
  journal_timings_.clear();
  journal_moves_.clear();
  if (++save_epoch_ == 0) {  // epoch wrapped: invalidate all stale marks
    std::fill(saved_stamp_.begin(), saved_stamp_.end(), 0u);
    save_epoch_ = 1;
  }
  journaling_ = true;
}

void IncrementalSchedule::rollback_journal() {
  H2H_EXPECTS(journaling_);
  // Reverse the queue surgery, newest move first.
  for (auto it = journal_moves_.rbegin(); it != journal_moves_.rend(); ++it) {
    auto& nq = queues_[it->new_acc.value];
    const std::uint32_t cur = pos_[it->node.value];
    H2H_ASSERT(cur < nq.size() && nq[cur] == it->node);
    nq.erase(nq.begin() + cur);
    for (std::uint32_t i = cur; i < nq.size(); ++i) pos_[nq[i].value] = i;
    auto& oq = queues_[it->old_acc.value];
    oq.insert(oq.begin() + it->old_pos, it->node);
    for (std::uint32_t i = it->old_pos; i < oq.size(); ++i)
      pos_[oq[i].value] = i;
    acc_[it->node.value] = it->old_acc;
  }
  // Restore saved timings (each node saved once; order is irrelevant).
  for (const auto& [id, t] : journal_timings_) timings_[id.value] = t;
  journal_timings_.clear();
  journal_moves_.clear();
  journaling_ = false;
}

void IncrementalSchedule::commit_journal() {
  H2H_EXPECTS(journaling_);
  journal_timings_.clear();
  journal_moves_.clear();
  journaling_ = false;
}

double IncrementalSchedule::latency() const noexcept {
  double out = 0.0;
  for (const LayerTiming& t : timings_) out = std::max(out, t.finish);
  return out;
}

EnergyBreakdown IncrementalSchedule::energy(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  EnergyBreakdown e;
  double latency = 0.0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = timings_[id.value];
    e += sim_->layer_energy(id, m, t);
    latency = std::max(latency, t.finish);
  }
  e.static_power = sim_->sys().static_energy(latency);
  return e;
}

ScheduleResult IncrementalSchedule::result(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  ScheduleResult r;
  r.timings = timings_;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = timings_[id.value];
    r.comp_time += t.t_compute;
    r.local_time += t.t_local;
    r.host_time += t.t_host;
    r.host_bytes += t.host_bytes;
    r.local_bytes += t.local_bytes;
    r.energy += sim_->layer_energy(id, m, t);
    r.latency = std::max(r.latency, t.finish);
  }
  r.energy.static_power = sim_->sys().static_energy(r.latency);
  return r;
}

}  // namespace h2h
