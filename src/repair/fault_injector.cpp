#include "repair/fault_injector.h"

#include "util/contracts.h"
#include "util/rng.h"

namespace h2h {
namespace {

enum class Draw { Lose, Return, Degrade, Restore, Derate };

/// Pick a uniformly random member of `pool` whose flag equals `want`.
/// Requires at least one such member.
[[nodiscard]] AccId pick(Rng& rng, const std::vector<bool>& pool, bool want) {
  std::size_t n = 0;
  for (const bool v : pool) n += v == want;
  H2H_ASSERT(n > 0);
  std::size_t k = rng.index(n);
  for (std::uint32_t a = 0; a < pool.size(); ++a) {
    if (pool[a] != want) continue;
    if (k == 0) return AccId{a};
    --k;
  }
  H2H_ASSERT(false);
  return AccId{};
}

}  // namespace

FaultInjector FaultInjector::random(std::uint64_t seed, std::size_t count,
                                    std::size_t acc_count,
                                    const FaultScheduleOptions& options) {
  H2H_EXPECTS(acc_count > 0);
  H2H_EXPECTS(options.min_alive >= 1);
  H2H_EXPECTS(options.min_scale > 0 && options.min_scale <= options.max_scale &&
              options.max_scale <= 1);
  Rng rng(seed);
  std::vector<bool> alive(acc_count, true);
  std::vector<bool> degraded(acc_count, false);
  std::vector<bool> derated(acc_count, false);
  std::size_t alive_count = acc_count;

  std::vector<FaultEvent> script;
  script.reserve(count);
  const auto scale = [&rng, &options]() {
    return options.min_scale == options.max_scale
               ? options.min_scale
               : rng.uniform_real(options.min_scale, options.max_scale);
  };
  while (script.size() < count) {
    // Weighted draw over the categories feasible in the current state. At
    // least one category is always feasible: a fully healthy system above
    // the floor can lose or derate, and a system at the floor can still
    // degrade/derate a survivor.
    struct Option {
      Draw draw;
      double weight;
    };
    std::vector<Option> feasible;
    if (alive_count > options.min_alive)
      feasible.push_back({Draw::Lose, options.w_lose});
    if (alive_count < acc_count)
      feasible.push_back({Draw::Return, options.w_return});
    if (alive_count > 0) {
      feasible.push_back({Draw::Degrade, options.w_degrade});
      feasible.push_back({Draw::Derate, options.w_derate});
    }
    bool any_degraded = false;
    for (std::uint32_t a = 0; a < acc_count; ++a)
      any_degraded = any_degraded || (degraded[a] && alive[a]);
    if (any_degraded) feasible.push_back({Draw::Restore, options.w_restore});
    H2H_ASSERT(!feasible.empty());

    double total = 0;
    for (const Option& o : feasible) total += o.weight;
    double r = rng.uniform_real(0, total > 0 ? total : 1.0);
    Draw draw = feasible.back().draw;
    for (const Option& o : feasible) {
      if (r < o.weight) {
        draw = o.draw;
        break;
      }
      r -= o.weight;
    }

    switch (draw) {
      case Draw::Lose: {
        const AccId a = pick(rng, alive, true);
        script.push_back(FaultEvent::lost(a));
        alive[a.value] = false;
        --alive_count;
        break;
      }
      case Draw::Return: {
        const AccId a = pick(rng, alive, false);
        script.push_back(FaultEvent::returned(a));
        alive[a.value] = true;
        ++alive_count;
        break;
      }
      case Draw::Degrade: {
        const AccId a = pick(rng, alive, true);
        script.push_back(FaultEvent::link_degraded(a, scale()));
        degraded[a.value] = true;
        break;
      }
      case Draw::Restore: {
        // Restore a degraded *alive* accelerator (a dead one's links are
        // moot until it returns).
        std::vector<bool> restorable(acc_count, false);
        for (std::uint32_t a = 0; a < acc_count; ++a)
          restorable[a] = degraded[a] && alive[a];
        const AccId a = pick(rng, restorable, true);
        script.push_back(FaultEvent::link_restored(a));
        degraded[a.value] = false;
        break;
      }
      case Draw::Derate: {
        const AccId a = pick(rng, alive, true);
        script.push_back(FaultEvent::spec_derated(a, scale()));
        derated[a.value] = true;
        break;
      }
    }
  }
  return FaultInjector(std::move(script));
}

}  // namespace h2h
