// Unit helpers: the library internally uses
//   bytes            -> std::uint64_t
//   seconds, joules  -> double
//   bandwidth        -> bytes per second (double)
//   frequency        -> hertz (double)
// These helpers keep literal call sites readable (e.g. `gib(4)`,
// `gbps(1.25)`) and centralize the binary/decimal conventions:
// memory capacities are binary (KiB/MiB/GiB), link bandwidths decimal (GB/s),
// matching how the surveyed FPGA papers quote them.
#pragma once

#include <cstdint>

namespace h2h {

using Bytes = std::uint64_t;

[[nodiscard]] constexpr Bytes kib(double v) noexcept {
  return static_cast<Bytes>(v * 1024.0);
}
[[nodiscard]] constexpr Bytes mib(double v) noexcept {
  return static_cast<Bytes>(v * 1024.0 * 1024.0);
}
[[nodiscard]] constexpr Bytes gib(double v) noexcept {
  return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0);
}

/// Decimal gigabytes per second -> bytes per second.
[[nodiscard]] constexpr double gbps(double v) noexcept { return v * 1e9; }
/// Decimal megabytes per second -> bytes per second.
[[nodiscard]] constexpr double mbps(double v) noexcept { return v * 1e6; }

/// Megahertz -> hertz.
[[nodiscard]] constexpr double mhz(double v) noexcept { return v * 1e6; }

/// Picojoules -> joules (per-MAC energies are quoted in pJ).
[[nodiscard]] constexpr double picojoules(double v) noexcept { return v * 1e-12; }
/// Nanojoules -> joules (per-byte energies are quoted in nJ).
[[nodiscard]] constexpr double nanojoules(double v) noexcept { return v * 1e-9; }

/// Pretty-printing helpers (definitions in units.cpp).
struct HumanBytes {
  Bytes value;
};
struct HumanSeconds {
  double value;
};

}  // namespace h2h
