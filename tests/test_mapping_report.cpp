#include <gtest/gtest.h>

#include <sstream>

#include "report/mapping_report.h"
#include "test_helpers.h"

namespace h2h {
namespace {

TEST(MappingReport, ContainsEverySection) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  const PlanResponse r = plan_once(model, sys);

  std::ostringstream out;
  MappingReportOptions opts;
  opts.per_layer = true;
  print_mapping_report(model, sys, r, out, opts);
  const std::string text = out.str();

  EXPECT_NE(text.find("model mini-mmmt"), std::string::npos);
  EXPECT_NE(text.find("pipeline:"), std::string::npos);
  EXPECT_NE(text.find("1: computation-prioritized"), std::string::npos);
  EXPECT_NE(text.find("4: locality-aware remapping"), std::string::npos);
  EXPECT_NE(text.find("locality:"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("Gantt"), std::string::npos);
  // Per-layer table includes every compute layer by name.
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    EXPECT_NE(text.find(model.layer(id).name), std::string::npos)
        << model.layer(id).name;
  }
}

TEST(MappingReport, GanttAndPerLayerAreOptional) {
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse r = plan_once(model, sys);

  std::ostringstream out;
  MappingReportOptions opts;
  opts.gantt = false;
  opts.per_layer = false;
  print_mapping_report(model, sys, r, out, opts);
  EXPECT_EQ(out.str().find("Gantt"), std::string::npos);
  // Still reports the pipeline and loads.
  EXPECT_NE(out.str().find("pipeline:"), std::string::npos);
}

TEST(MappingReport, LocalityNumbersMatchPlan) {
  const ModelGraph model = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse r = plan_once(model, sys);
  std::ostringstream out;
  print_mapping_report(model, sys, r, out);
  const std::string text = out.str();
  // The pinned-layer count printed matches the plan.
  EXPECT_NE(text.find(strformat("%zu layers pinned", r.plan.pinned_count())),
            std::string::npos);
  EXPECT_NE(text.find(strformat("%zu edges fused", r.plan.fused_edge_count())),
            std::string::npos);
}

}  // namespace
}  // namespace h2h
