// Multi-tenant co-mapping (DESIGN.md §11).
//
// N tenant models share one heterogeneous system. Planning them
// independently ("sequential" deployment: each tenant maps as if alone,
// then all run together) ignores contention — two tenants can both claim
// the fastest conv board and both miss their deadlines. The CoMapper plans
// the *union model* (tenant/tenant.h) as a single H2H problem instead, in
// warm per-tenant rounds:
//
//   1. Solo plans: each tenant planned alone on the idle system (a warm
//      shared-system Planner), giving the slack baseline and the
//      sequential-deployment comparison point.
//   2. Round 1: tenants in deadline-slack order (most urgent first; the
//      mapf-het normalized-slack rule, priority breaking ties) each replan
//      the whole union with their peers expressed as constraints — step 1
//      forces peer layers to their current accelerators (the placement-
//      preference hook), step 2 force-pins peers' pinned weights, step 4
//      locks peer layers (RemapOptions::locked). Adoption is unconditional:
//      with one tenant every hook is off and the result is bit-identical to
//      Planner::plan (pinned by test_tenant.cpp).
//   3. Rounds 2+: the same sweep, adopting a tenant's replan only when the
//      global score — lexicographic (priority-weighted SLO violation
//      seconds, makespan) — strictly improves; stops early when a full
//      round adopts nothing.
//   4. Steal round: tenants still missing their SLO replan once more with
//      the peers that comfortably meet theirs unlocked, letting an urgent
//      tenant displace ("steal from") a generous one; adopted only on
//      strict score improvement.
//
// Capability constraints ride on the union model's stamped layer masks:
// CostTable admission (accel/capability.h) gates every candidate list, and
// an unplaceable tenant surfaces as CapabilityError before any round runs.
//
// Thread safety: co_map builds all mutable state per call; concurrent
// co_map calls on one CoMapper are safe (the shared Planner is itself
// thread-safe). The borrowed SystemConfig must stay unmutated while calls
// are in flight, matching the Planner's shared-system rule.
#pragma once

#include "core/planner.h"
#include "tenant/tenant.h"

namespace h2h {

struct CoMapOptions {
  /// Per-round pass options (same knobs as a single-tenant PlanRequest).
  PlanOptions plan;
  /// Improvement sweeps after the unconditional round 1 (0 disables them).
  std::uint32_t max_rounds = 3;
  /// Run the final steal round for SLO-missing tenants.
  bool steal_round = true;
  /// Slack normalization window in seconds (the mapf-het rule divides slack
  /// by this before clamping to [0, 1]). 0 auto-selects the largest finite
  /// SLO in the set (1 s when no tenant has one).
  double slack_normalize_s = 0;
};

/// Per-tenant verdict of one co-mapping.
struct TenantOutcome {
  std::string name;
  /// Union-model layer range of this tenant.
  TenantSpan span;
  /// Planned alone on the idle system (round 0's solo plan).
  double solo_latency_s = 0;
  /// Sequential deployment: solo mappings run together (steps 2-3 re-run on
  /// the union so DRAM capacity is shared fairly).
  double seq_latency_s = 0;
  /// Co-mapped latency (finish of the tenant's last layer).
  double latency_s = 0;
  double slo_s = 0;
  /// slo - latency; +infinity when the tenant has no SLO.
  double slack_s = 0;
  /// latency <= slo (always true without an SLO).
  bool met = true;
  std::uint32_t priority = 1;
};

struct CoMapResult {
  /// The union model the mapping below indexes (owned by the result).
  ModelGraph model;
  Mapping mapping;
  LocalityPlan plan;
  ScheduleResult schedule;
  std::vector<TenantOutcome> tenants;

  /// Sequential-deployment comparison point (same union, solo mappings).
  double seq_makespan_s = 0;
  double seq_violation_s = 0;

  /// Priority-weighted SLO violation of the co-mapping, seconds
  /// (sum over tenants of max(1, priority) x max(0, latency - slo)).
  double violation_s = 0;
  /// Improvement sweeps actually run (the unconditional round 1 included).
  std::uint32_t rounds = 0;
  /// True when the steal round ran (some tenant missed after the sweeps).
  bool steal_ran = false;
  bool all_slos_met = true;

  [[nodiscard]] const TenantOutcome& outcome(std::string_view name) const;
};

/// Per-tenant finish times under a union-model schedule: out[i] is the max
/// finish across tenant i's span (the co-mapper's own SLO accounting).
/// Public so live repair (repair/repair.h) can reassess tenant SLOs against
/// a repaired union schedule without re-running the co-mapper.
[[nodiscard]] std::vector<double> tenant_latencies(
    const ScheduleResult& sched, const std::vector<TenantSpan>& spans);

class CoMapper {
 public:
  /// Borrows `sys` for every plan (it must outlive the CoMapper).
  explicit CoMapper(const SystemConfig& sys);
  /// Rvalue systems would dangle (the CoMapper stores a pointer).
  explicit CoMapper(SystemConfig&&) = delete;

  /// Co-map the tenant set. Throws CapabilityError when some tenant's
  /// capability mask excludes every supporting accelerator, ConfigError on
  /// union-constraint violations (tenant/tenant.h).
  [[nodiscard]] CoMapResult co_map(const TenantSet& tenants,
                                   const CoMapOptions& options = {});

  /// The internal shared-system Planner (solo-plan cache introspection).
  [[nodiscard]] const Planner& planner() const noexcept { return planner_; }

 private:
  const SystemConfig* sys_;
  Planner planner_;
};

}  // namespace h2h
