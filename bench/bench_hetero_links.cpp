// System-heterogeneity experiment: the paper's §3 notes cloud-FPGA Ethernet
// spans 1G to 10G (0.125-1.25 GB/s). The evaluation uses one BW_acc for the
// whole system; here half the accelerators keep slow 1G links while the
// other half get 10G (via per-accelerator bw_acc_override), and H2H must
// steer traffic-heavy layers toward the fast-linked devices.
#include <benchmark/benchmark.h>

#include <iostream>

#include "accel/analytical_models.h"
#include "h2h.h"

namespace {

using namespace h2h;

/// Standard catalog with 10G links on every even-indexed accelerator; the
/// system-wide BW_acc stays at 1G for the rest.
SystemConfig mixed_link_system() {
  auto specs = standard_catalog();
  for (std::size_t i = 0; i < specs.size(); i += 2)
    specs[i].bw_acc_override = bandwidth_value(BandwidthSetting::High);
  std::vector<AcceleratorPtr> accs;
  for (auto& s : specs) accs.push_back(make_analytical(std::move(s)));
  HostParams host;
  host.bw_acc = bandwidth_value(BandwidthSetting::LowMinus);
  return SystemConfig(std::move(accs), host);
}

void BM_MixedLinks_CasiaSurf(benchmark::State& state) {
  const ModelGraph model = make_casia_surf();
  const SystemConfig sys = mixed_link_system();
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_MixedLinks_CasiaSurf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "uniform 1G (s)", "mixed 1G/10G (s)",
                   "uniform 10G (s)", "mixed vs slow", "fast-link layers"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig slow =
        SystemConfig::standard(BandwidthSetting::LowMinus);
    const SystemConfig fast = SystemConfig::standard(BandwidthSetting::High);
    const SystemConfig mixed = mixed_link_system();

    const double lat_slow = plan_once(model, slow).final_result().latency;
    const double lat_fast = plan_once(model, fast).final_result().latency;
    const PlanResponse r_mixed = plan_once(model, mixed);

    // How many layers ended up on fast-linked accelerators?
    std::size_t on_fast = 0, total = 0;
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      ++total;
      if (mixed.spec(r_mixed.mapping.acc_of(id)).bw_acc_override > 0) ++on_fast;
    }

    table.add_row({std::string(info.key), strformat("%.6f", lat_slow),
                   strformat("%.6f", r_mixed.final_result().latency),
                   strformat("%.6f", lat_fast),
                   format_percent(
                       1.0 - r_mixed.final_result().latency / lat_slow, 1),
                   strformat("%zu/%zu", on_fast, total)});
  }
  std::cout << "heterogeneous host-link experiment (1G vs mixed vs 10G):\n";
  table.print(std::cout);
  std::cout << "\n(mixed systems recover part of the fast-uniform latency by\n"
               "steering traffic-heavy layers onto 10G-linked devices)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
