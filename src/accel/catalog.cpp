#include "accel/catalog.h"

#include "accel/analytical_models.h"
#include "util/str.h"

namespace h2h {
namespace {

// Shorthand for catalog entries. Peak GMAC/s = macs_per_cycle * freq;
// the cited papers quote GOPS (1 MAC = 2 ops).
AcceleratorSpec spec(const char* name, const char* description,
                     const char* board, DataflowStyle style, KindSupport kinds,
                     std::uint32_t macs_per_cycle, PeArray pe, double freq,
                     double dram_bw, Bytes dram_cap, double e_mac_pj,
                     double e_dram_pj_per_byte, double link_w,
                     double weight_buf_mib, double act_buf_mib) {
  AcceleratorSpec s;
  s.name = name;
  s.description = description;
  s.board = board;
  s.style = style;
  s.kinds = kinds;
  s.peak_macs_per_cycle = macs_per_cycle;
  s.pe = pe;
  s.freq_hz = freq;
  s.dram_bandwidth = dram_bw;
  s.dram_capacity = dram_cap;
  s.energy_per_mac = picojoules(e_mac_pj);
  s.energy_per_dram_byte = picojoules(e_dram_pj_per_byte);
  s.link_power = link_w;
  s.buffers = OnChipBuffers{mib(weight_buf_mib), mib(act_buf_mib)};
  return s;
}

constexpr KindSupport kConvOnly{true, false, false};
constexpr KindSupport kConvFc{true, true, false};
constexpr KindSupport kConvFcLstm{true, true, true};
constexpr KindSupport kLstmFc{false, true, true};
constexpr KindSupport kLstmOnly{false, false, true};

}  // namespace

std::vector<AcceleratorSpec> standard_catalog() {
  std::vector<AcceleratorSpec> out;
  out.reserve(12);

  // J.Z — Zhang et al., FPGA'17: OpenCL CNN accelerator, on-chip memory
  // optimization, Arria-10 GX1150. ~600 GOPS class, GEMM-style kernels.
  out.push_back(spec("J.Z", "OpenCL CNN, on-chip memory opt (FPGA'17)",
                     "GX1150", DataflowStyle::MatrixEngine, kConvOnly,
                     1024, PeArray{32, 32}, mhz(300), gbps(19.2), gib(2),
                     60, 120, 3.0, 4, 2));

  // C.Z — Zhang et al., FPGA'15: the classic roofline-optimized design,
  // Tm=64 x Tn=7 channel-parallel array at 100 MHz on VC707 (61.6 GFLOPS).
  out.push_back(spec("C.Z", "Roofline channel-parallel conv (FPGA'15)",
                     "VC707", DataflowStyle::ChannelParallel, kConvOnly,
                     448, PeArray{64, 7}, mhz(100), gbps(12.8), gib(1),
                     300, 180, 2.5, 1, 0.5));

  // W.J — Jiang et al., TECS'19: super-linear multi-FPGA inference;
  // per-FPGA engine with combined memory/channel optimization on ZCU102.
  out.push_back(spec("W.J", "Memory+channel optimized conv (TECS'19)",
                     "ZCU102", DataflowStyle::ChannelParallel, kConvOnly,
                     1536, PeArray{48, 32}, mhz(200), gbps(19.2), gib(4),
                     60, 120, 3.0, 4, 2));

  // J.Q — Qiu et al., FPGA'16: "Going Deeper", conv + FC with partial LSTM
  // generality on ZC706 (187.8 GOPS conv).
  out.push_back(spec("J.Q", "Conv/FC embedded accelerator (FPGA'16)",
                     "ZC706", DataflowStyle::MatrixEngine, kConvFcLstm,
                     780, PeArray{26, 30}, mhz(150), gbps(6.4), gib(1),
                     80, 180, 2.5, 1.5, 1));

  // A.C — Chang et al., 2017 (Snowflake): compiler-driven vector MAC design
  // on XC7Z045 (~128 GOPS), feature-map-parallel execution.
  out.push_back(spec("A.C", "Compiled vector conv engine (Snowflake)",
                     "XC7Z045", DataflowStyle::FeatureMapParallel, kConvOnly,
                     256, PeArray{16, 16}, mhz(250), gbps(6.4), gib(1),
                     70, 180, 2.5, 1, 1));

  // Y.G — Guan et al., FCCM'17 (FP-DNN): RTL-HLS hybrid matrix engine
  // running Conv/FC/LSTM on Stratix-V.
  out.push_back(spec("Y.G", "FP-DNN generic matrix engine (FCCM'17)",
                     "Stratix-V", DataflowStyle::MatrixEngine, kConvFcLstm,
                     1024, PeArray{32, 32}, mhz(150), gbps(9.6), gib(4),
                     65, 150, 3.0, 3, 2));

  // T.M — Ma et al., FPGA'17: exhaustive loop optimization, ~645 GOPS on
  // Arria-10 GX1150.
  out.push_back(spec("T.M", "Loop-optimized conv (FPGA'17)",
                     "GX1150", DataflowStyle::ChannelParallel, kConvOnly,
                     1568, PeArray{64, 24}, mhz(200), gbps(19.2), gib(2),
                     45, 120, 3.0, 4, 2));

  // A.P — Podili et al., ASAP'17: Winograd F(2,3) conv engine, Stratix-V.
  out.push_back(spec("A.P", "Winograd conv engine (ASAP'17)",
                     "Stratix-V", DataflowStyle::Winograd, kConvOnly,
                     512, PeArray{32, 16}, mhz(250), gbps(9.6), gib(4),
                     50, 150, 3.0, 3, 2));

  // X.W — Wei et al., DAC'17: automated systolic-array synthesis, ~1.2 TOPS
  // class on Arria-10 GT1150; the conv throughput champion of the catalog.
  out.push_back(spec("X.W", "Systolic-array conv (DAC'17)",
                     "GT1150", DataflowStyle::Systolic, kConvOnly,
                     2048, PeArray{64, 32}, mhz(230), gbps(19.2), gib(2),
                     40, 120, 3.0, 4, 2));

  // S.H — Han et al., FPGA'17 (ESE): deeply pipelined sparse LSTM engine on
  // XCKU060; dense-equivalent throughput modeled.
  out.push_back(spec("S.H", "ESE pipelined LSTM/FC (FPGA'17)",
                     "XCKU060", DataflowStyle::LstmPipeline, kLstmFc,
                     1024, PeArray{32, 32}, mhz(200), gbps(12.8), gib(8),
                     35, 120, 3.0, 4, 1));

  // X.Z — Zhang et al., ICCD'20: gate-parallel LSTM on PYNQ-Z1; the
  // smallest device in the system (512 MiB local DRAM).
  out.push_back(spec("X.Z", "Gate-parallel LSTM (ICCD'20)",
                     "PYNQ-Z1", DataflowStyle::GateParallel, kLstmOnly,
                     128, PeArray{16, 8}, mhz(100), gbps(2.1), mib(512),
                     90, 200, 2.0, 0.5, 0.25));

  // B.L — Li et al., ISLPED'20 (FTRANS): deep-pipeline recurrent/attention
  // engine on VCU118; the LSTM throughput champion.
  out.push_back(spec("B.L", "FTRANS deep-pipeline LSTM (ISLPED'20)",
                     "VCU118", DataflowStyle::LstmPipeline, kLstmFc,
                     1536, PeArray{48, 32}, mhz(200), gbps(19.2), gib(8),
                     30, 100, 3.5, 32, 4));

  return out;
}

std::vector<AcceleratorPtr> build_standard_accelerators() {
  std::vector<AcceleratorPtr> out;
  for (AcceleratorSpec& s : standard_catalog())
    out.push_back(make_analytical(std::move(s)));
  return out;
}

std::vector<AcceleratorSpec> scaled_catalog(std::size_t count) {
  const std::vector<AcceleratorSpec> base = standard_catalog();
  std::vector<AcceleratorSpec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    AcceleratorSpec s = base[i % base.size()];
    if (i >= base.size())
      s.name = strformat("%s#%zu", s.name.c_str(), i / base.size() + 1);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<AcceleratorPtr> build_scaled_accelerators(std::size_t count) {
  std::vector<AcceleratorPtr> out;
  for (AcceleratorSpec& s : scaled_catalog(count))
    out.push_back(make_analytical(std::move(s)));
  return out;
}

AcceleratorSpec eyeriss_like_spec() {
  return spec("EYE", "Row-stationary spatial array (Eyeriss-like)",
              "custom", DataflowStyle::RowStationary, kConvOnly,
              168, PeArray{12, 14}, mhz(200), gbps(6.4), gib(1),
              55, 150, 2.5, 0.75, 0.5);
}

}  // namespace h2h
