// Structural deep-checks of the reconstructed Table-2 models and their
// interaction with the full toolchain (summary, DOT export, standard-system
// mapping), beyond the aggregate assertions of test_zoo.cpp.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/dot.h"
#include "h2h.h"

namespace h2h {
namespace {

std::size_t count_kind(const ModelGraph& m, LayerKind kind) {
  std::size_t n = 0;
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == kind) ++n;
  return n;
}

TEST(ZooStructure, VlocnetHasSiameseTrunksAndTwoHeads) {
  const ModelGraph m = make_vlocnet();
  // Two image inputs (previous/current frame), no sequence inputs.
  EXPECT_EQ(m.graph().sources().size(), 2u);
  // Two task groups: odometry se3 + pose xyz/quat = 3 sinks.
  EXPECT_EQ(m.graph().sinks().size(), 3u);
  // The current frame feeds both the odometry and the global pose stream
  // (the cross-talk the paper's Fig. 1 highlights).
  bool cur_frame_shared = false;
  for (const LayerId id : m.graph().sources())
    if (m.graph().out_degree(id) >= 2) cur_frame_shared = true;
  EXPECT_TRUE(cur_frame_shared);
  // ResNet-50 bottlenecks: eltwise count = 16 (full) + 13x2 (trunks) + 3.
  EXPECT_EQ(count_kind(m, LayerKind::Eltwise), 16u + 13u + 13u + 3u);
}

TEST(ZooStructure, VfsIsDualStreamWithDeepFusion) {
  const ModelGraph m = make_vfs();
  EXPECT_EQ(m.graph().sources().size(), 2u);  // image + text
  EXPECT_EQ(m.graph().sinks().size(), 1u);    // sentiment head
  // 13 VGG convs + 29 VD-CNN convs.
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 42u);
  // The fusion MLP carries most parameters (the communication hot spot).
  std::uint64_t fusion_params = 0;
  for (const LayerId id : m.all_layers())
    if (m.layer(id).modality == 0) fusion_params += m.layer(id).param_count();
  EXPECT_GT(static_cast<double>(fusion_params),
            0.5 * static_cast<double>(m.stats().total_params));
}

TEST(ZooStructure, TriModalModelsHaveThreeIndependentSources) {
  for (const ZooModel id :
       {ZooModel::CasiaSurf, ZooModel::FaceBag, ZooModel::MoCap}) {
    const ModelGraph m = make_model(id);
    EXPECT_EQ(m.graph().sources().size(), 3u) << zoo_info(id).key;
    // Each source reaches the sinks (fusion connects all modalities).
    for (const LayerId src : m.graph().sources()) {
      const std::array<LayerId, 1> roots{src};
      const auto seen = reachable_from(m.graph(), roots);
      bool reaches_sink = false;
      for (const LayerId sink : m.graph().sinks())
        reaches_sink = reaches_sink || seen[sink.value];
      EXPECT_TRUE(reaches_sink) << zoo_info(id).key;
    }
  }
}

TEST(ZooStructure, SummaryPerLayerListsEveryNode) {
  const ModelGraph m = make_mocap();
  std::ostringstream out;
  print_model_summary(m, out, /*per_layer=*/true);
  const std::string text = out.str();
  for (const LayerId id : m.all_layers())
    EXPECT_NE(text.find(m.layer(id).name), std::string::npos)
        << m.layer(id).name;
}

TEST(ZooStructure, DotExportCoversMappedModel) {
  const ModelGraph m = make_cnn_lstm();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  const PlanResponse r = plan_once(m, sys);
  const std::string dot = to_dot(
      m.graph(), [&](NodeId n) { return m.layer(n).name; },
      [&](NodeId n) {
        const AccId acc = r.mapping.acc_of(n);
        return acc.is_host() ? std::string()
                             : "fillcolor=gray" ;
      });
  EXPECT_NE(dot.find("vid.lstm"), std::string::npos);
  // Edge count in the DOT matches the graph.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1))
    ++arrows;
  EXPECT_EQ(arrows, m.graph().edge_count());
}

TEST(ZooStructure, StandardMappingUsesHeterogeneity) {
  // On the 12-accelerator system, a mixed conv+LSTM model must spread over
  // conv-capable AND lstm-capable designs (computation awareness).
  const ModelGraph m = make_cnn_lstm();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  const PlanResponse r = plan_once(m, sys);
  bool conv_on_conv_design = false;
  bool lstm_on_lstm_design = false;
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.kind == LayerKind::Input) continue;
    const AcceleratorSpec& spec = sys.spec(r.mapping.acc_of(id));
    if (l.kind == LayerKind::Conv && spec.kinds.conv && !spec.kinds.lstm)
      conv_on_conv_design = true;
    if (l.kind == LayerKind::Lstm &&
        (spec.style == DataflowStyle::LstmPipeline ||
         spec.style == DataflowStyle::GateParallel))
      lstm_on_lstm_design = true;
  }
  EXPECT_TRUE(conv_on_conv_design);
  EXPECT_TRUE(lstm_on_lstm_design);
}

}  // namespace
}  // namespace h2h
