// Regenerates Figure 5(b): H2H mapping search time per model. The paper
// reports consistently sub-second search, slowest for VLocNet (the largest
// layer count) and fastest for CNN-LSTM/MoCap (< 30 layers). Here the
// search itself is the benchmarked quantity, measured by google-benchmark
// for every model at bandwidth Mid, plus the paper-style table from single
// timed runs across all bandwidths.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

void BM_H2HSearch(benchmark::State& state) {
  const auto model_id = static_cast<h2h::ZooModel>(state.range(0));
  const h2h::ModelGraph model = h2h::make_model(model_id);
  const h2h::SystemConfig sys =
      h2h::SystemConfig::standard(h2h::BandwidthSetting::Mid);
  for (auto _ : state) {
    const h2h::H2HResult r = h2h::H2HMapper(model, sys).run();
    benchmark::DoNotOptimize(r.final_result().latency);
  }
  state.SetLabel(std::string(h2h::zoo_info(model_id).key));
}
BENCHMARK(BM_H2HSearch)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::vector<h2h::StepSeries> sweep = h2h::run_full_sweep();
  h2h::print_fig5b(sweep, std::cout);

  bool all_subsecond = true;
  for (const h2h::StepSeries& s : sweep)
    all_subsecond = all_subsecond && s.search_seconds < 1.0;
  std::cout << "\nall searches < 1 s: " << (all_subsecond ? "yes" : "NO")
            << " (paper: 'consistently low ... less than one second')\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
